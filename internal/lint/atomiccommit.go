package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// atomiccommit encodes the storage layer's commit protocol: durable
// state becomes visible only via write → fsync → rename (PR 5's
// internal/atomicio.WriteFile, used by persist, segidx and shard for
// every snapshot, segment and manifest). A file that is created and
// renamed into place without a Sync in between can be published torn:
// the rename may survive a crash while the data bytes are still only
// in the page cache — exactly the class the PR 5/6 kill-mid-save and
// torn-manifest chaos tests exist for.
//
// The check is flow-based: an os.Create/os.CreateTemp/os.OpenFile call
// seeds a file handle and a path value; the path taints variables
// through assignments and f.Name(); an os.Rename whose source resolves
// to a tainted path is a commit point, and it is reported unless a
// Sync call on the originating handle appears before it in source
// order. os.WriteFile never syncs, so an os.WriteFile whose path
// reaches an os.Rename source is always reported — route it through
// atomicio.WriteFile instead. Handles that escape into helper calls
// are assumed synced by the helper (fmt.Fprint*/io.Copy/bufio writers
// do not count as escapes: none of them sync).
var analyzerAtomiccommit = &Analyzer{
	Name: "atomiccommit",
	Doc:  "files must flow through write→sync→rename (atomicio.WriteFile) before a rename publishes them",
	Run:  runAtomiccommit,
}

// creation is one file-producing call site being tracked toward a
// rename.
type creation struct {
	pos     token.Pos
	kind    string              // "os.Create", "os.CreateTemp", "os.OpenFile", "os.WriteFile"
	handle  *types.Var          // the *os.File var, nil for os.WriteFile
	pathArg ast.Expr            // the path argument (nil for CreateTemp: its name is only known via f.Name())
	paths   map[*types.Var]bool // vars carrying the created file's path
	synced  token.Pos           // first handle.Sync() position, if any
	escaped bool                // handle passed to an unknown helper that may sync it
}

func runAtomiccommit(p *Pass) {
	if !inInternal(p.Pkg.Path()) {
		return
	}
	for _, ff := range p.Flow.Funcs {
		checkAtomicCommit(p, ff)
	}
}

func inInternal(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

// writeFlags reports whether an os.OpenFile flags expression can write
// (textual check: the flag constants are pkg-qualified identifiers).
func writeFlags(e ast.Expr) bool {
	s := types.ExprString(e)
	return strings.Contains(s, "O_CREATE") || strings.Contains(s, "O_WRONLY") ||
		strings.Contains(s, "O_RDWR") || strings.Contains(s, "O_APPEND") || strings.Contains(s, "O_TRUNC")
}

func checkAtomicCommit(p *Pass, ff *FuncFlow) {
	var creations []*creation

	// Pass 1: find creations and seed their path taint sets.
	ast.Inspect(ff.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return true
		}
		c := &creation{pos: call.Pos(), paths: make(map[*types.Var]bool)}
		switch fn.Name() {
		case "Create", "OpenFile":
			if fn.Name() == "OpenFile" && len(call.Args) > 1 && !writeFlags(call.Args[1]) {
				return true // read-only open: renaming it later is not a commit
			}
			c.kind = "os." + fn.Name()
			if len(call.Args) > 0 {
				c.pathArg = call.Args[0]
				if v := ff.VarOf(call.Args[0]); v != nil {
					c.paths[v] = true
				}
			}
		case "CreateTemp":
			c.kind = "os.CreateTemp"
		case "WriteFile":
			c.kind = "os.WriteFile"
			if len(call.Args) > 0 {
				c.pathArg = call.Args[0]
				if v := ff.VarOf(call.Args[0]); v != nil {
					c.paths[v] = true
				}
			}
		default:
			return true
		}
		if c.kind != "os.WriteFile" {
			c.handle = assignedHandle(p, ff, call)
			if c.handle == nil {
				return true // handle discarded or non-ident; nothing to follow
			}
		}
		creations = append(creations, c)
		return true
	})
	if len(creations) == 0 {
		return
	}

	// Pass 2: propagate facts in source order — path taint through
	// assignments and f.Name(), Sync calls, handle escapes.
	for _, c := range creations {
		propagateCreation(p, ff, c)
	}

	// Pass 3: every os.Rename whose source is a tainted path commits a
	// tracked file; require a prior Sync (or an escape) on its handle.
	ast.Inspect(ff.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" || fn.Name() != "Rename" || len(call.Args) != 2 {
			return true
		}
		src := call.Args[0]
		for _, c := range creations {
			if call.Pos() < c.pos || !pathMatches(ff, c, src) {
				continue
			}
			if c.kind == "os.WriteFile" {
				p.Reportf(call.Pos(), "os.Rename publishes a file written by os.WriteFile (no fsync); a crash can commit a torn file — use atomicio.WriteFile")
				return true
			}
			if c.escaped || (c.synced != token.NoPos && c.synced < call.Pos()) {
				return true
			}
			p.Reportf(call.Pos(), "os.Rename publishes the file created by %s with no Sync in between; a crash can commit a torn file — Sync before the rename or use atomicio.WriteFile", c.kind)
			return true
		}
		return true
	})
}

// assignedHandle returns the variable the call's first result (the
// *os.File) is assigned to, or nil.
func assignedHandle(p *Pass, ff *FuncFlow, call *ast.CallExpr) *types.Var {
	stmt := ff.EnclosingStmt(call)
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Lhs) == 0 {
		return nil
	}
	for _, rhs := range as.Rhs {
		if ast.Unparen(rhs) == call || rhs == call {
			v := ff.VarOf(as.Lhs[0])
			if v != nil && isOSFile(v.Type()) {
				return v
			}
		}
	}
	return nil
}

func isOSFile(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := ptr.Elem().(*types.Named)
	return ok && n.Obj().Name() == "File" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "os"
}

// propagateCreation walks the function once in source order, growing
// the creation's path-taint set (x := path, y := f.Name(), z := x) and
// recording Sync calls and handle escapes.
func propagateCreation(p *Pass, ff *FuncFlow, c *creation) {
	// Taint via assignment chains from already-tainted path vars, and
	// via f.Name() on the handle. Iterate to a fixpoint: source order
	// is usually enough, but `a := f.Name(); b := a` across branches
	// converges in two rounds.
	for changed := true; changed; {
		changed = false
		for v, defs := range ff.defs {
			if c.paths[v] {
				continue
			}
			for _, d := range defs {
				if d.RHS == nil || d.Pos < c.pos {
					continue
				}
				if exprCarriesPath(p, ff, c, d.RHS) {
					c.paths[v] = true
					changed = true
					break
				}
			}
		}
	}
	if c.handle == nil {
		return
	}
	for _, use := range ff.UsesOf(c.handle) {
		if use.Pos() < c.pos {
			continue
		}
		sel, ok := ff.flow.Parent(use).(*ast.SelectorExpr)
		if ok {
			if call, ok2 := ff.flow.Parent(sel).(*ast.CallExpr); ok2 && call.Fun == sel {
				if sel.Sel.Name == "Sync" {
					if c.synced == token.NoPos || use.Pos() < c.synced {
						c.synced = use.Pos()
					}
				}
				continue // other method calls on the handle (Write, Close, Name) are neutral
			}
			continue
		}
		// Handle used as a plain value: passed to fmt.Fprint*/io.Copy
		// (known not to sync) stays tracked; any other call argument is
		// an escape into code that may sync for us.
		if call, ok := ff.flow.Parent(use).(*ast.CallExpr); ok && isCallArg(call, use) {
			if fn := calleeFunc(p, call); fn != nil && fn.Pkg() != nil {
				switch {
				case fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint"):
					continue
				case fn.Pkg().Path() == "io" && fn.Name() == "Copy":
					continue
				case fn.Pkg().Path() == "bufio" && strings.HasPrefix(fn.Name(), "NewWriter"):
					continue // a bufio.Writer never syncs the underlying file
				}
			}
			c.escaped = true
		}
	}
}

// exprCarriesPath reports whether e evaluates to the creation's path:
// a tainted variable, the identical path expression text, or
// handle.Name().
func exprCarriesPath(p *Pass, ff *FuncFlow, c *creation, e ast.Expr) bool {
	e = ast.Unparen(e)
	if v := ff.VarOf(e); v != nil {
		return c.paths[v]
	}
	if call, ok := e.(*ast.CallExpr); ok && c.handle != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Name" {
			if v := ff.VarOf(sel.X); v != nil && v == c.handle {
				return true
			}
		}
	}
	if c.pathArg != nil && types.ExprString(e) == types.ExprString(c.pathArg) {
		return true
	}
	return false
}

// pathMatches reports whether the rename source expression resolves to
// the creation's path.
func pathMatches(ff *FuncFlow, c *creation, src ast.Expr) bool {
	src = ast.Unparen(src)
	if v := ff.VarOf(src); v != nil && c.paths[v] {
		return true
	}
	if call, ok := src.(*ast.CallExpr); ok && c.handle != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Name" {
			if v := ff.VarOf(sel.X); v != nil && v == c.handle {
				return true
			}
		}
	}
	if c.pathArg != nil && types.ExprString(src) == types.ExprString(c.pathArg) {
		return true
	}
	return false
}
