// Command xkgen emits synthetic datasets matching the paper's two XML
// schemas — the TPC-H-like document of Figures 1/5 and a DBLP-like
// document matching Figure 14 (with synthetic citations) — plus a
// citation-network edge-list dump for the generic graph-source path.
// The XML schemas write a single document that cmd/xkeyword can load
// back; the citation schema writes a <name>.nodes.csv / <name>.edges.csv
// pair for xkeyword -nodes/-edges.
//
// Usage:
//
//	xkgen -schema tpch|dblp [-seed N] [-scale N] [-o file]
//	xkgen -schema citation -o base [-seed N] [-scale N]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/datagen"
	"repro/internal/xmlexport"
)

func main() {
	var (
		schemaFlag = flag.String("schema", "dblp", "dataset schema: tpch, dblp or citation")
		seed       = flag.Int64("seed", 1, "generator seed")
		scale      = flag.Int("scale", 1, "size multiplier over the default parameters")
		out        = flag.String("o", "", "output file (default stdout; required for citation)")
	)
	flag.Parse()
	if *scale < 1 {
		fatal(fmt.Errorf("scale must be >= 1"))
	}
	if *schemaFlag == "citation" {
		emitCitation(*seed, *scale, *out)
		return
	}

	var ds *datagen.Dataset
	var err error
	switch *schemaFlag {
	case "tpch":
		p := datagen.DefaultTPCHParams()
		p.Seed = *seed
		p.Persons *= *scale
		p.Parts *= *scale
		ds, err = datagen.TPCH(p)
	case "dblp":
		p := datagen.DefaultDBLPParams()
		p.Seed = *seed
		p.PapersPerYear *= *scale
		p.Authors *= *scale
		ds, err = datagen.DBLP(p)
	default:
		err = fmt.Errorf("unknown schema %q", *schemaFlag)
	}
	if err != nil {
		fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := xmlexport.Write(w, ds.Data, "db"); err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "xkgen: %d nodes, %d edges (%s, seed %d, scale %d)\n",
		ds.Data.NumNodes(), ds.Data.NumEdges(), *schemaFlag, *seed, *scale)
}

// emitCitation writes the citation edge-list pair. The two files need
// distinct paths, so -o names a base: "x" (or "x.csv") writes
// x.nodes.csv and x.edges.csv.
func emitCitation(seed int64, scale int, out string) {
	if out == "" {
		fatal(fmt.Errorf("citation writes two files; -o base path is required"))
	}
	p := datagen.DefaultCitationParams()
	p.Seed = seed
	p.Papers *= scale
	p.Authors *= scale
	nodes, edges, err := datagen.CitationCSV(p)
	if err != nil {
		fatal(err)
	}
	base := strings.TrimSuffix(out, ".csv")
	nodesPath, edgesPath := base+".nodes.csv", base+".edges.csv"
	if err := os.WriteFile(nodesPath, nodes, 0o644); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(edgesPath, edges, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "xkgen: %d papers, %d authors, %d venues -> %s, %s (seed %d, scale %d)\n",
		p.Papers, p.Authors, p.Venues, nodesPath, edgesPath, seed, scale)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xkgen:", err)
	os.Exit(1)
}
