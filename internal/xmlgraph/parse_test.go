package xmlgraph

import (
	"strings"
	"testing"
)

const sampleDoc = `
<db>
  <person id="p1">
    <name>John</name>
    <nation>US</nation>
    <order>
      <lineitem>
        <quantity>10</quantity>
        <supplier ref="p1"/>
      </lineitem>
    </order>
  </person>
  <part id="pa1">
    <pname>TV</pname>
  </part>
</db>`

func parseSample(t *testing.T, opts ParseOptions) *Graph {
	t.Helper()
	g, err := ParseString(sampleDoc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func findByLabel(g *Graph, label string) []NodeID {
	var out []NodeID
	for _, id := range g.Nodes() {
		if g.Node(id).Label == label {
			out = append(out, id)
		}
	}
	return out
}

func TestParseBasicStructure(t *testing.T) {
	g := parseSample(t, ParseOptions{OmitRoot: true})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	roots := g.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %v, want 2 (person, part)", roots)
	}
	persons := findByLabel(g, "person")
	if len(persons) != 1 {
		t.Fatalf("person nodes = %v", persons)
	}
	names := findByLabel(g, "name")
	if len(names) != 1 || g.Node(names[0]).Value != "John" {
		t.Fatalf("name node wrong: %v", names)
	}
	// supplier ref="p1" must become a reference edge supplier -> person.
	sups := findByLabel(g, "supplier")
	if len(sups) != 1 {
		t.Fatalf("supplier nodes = %v", sups)
	}
	out := g.Out(sups[0])
	if len(out) != 1 || out[0].Kind != Reference || out[0].To != persons[0] {
		t.Fatalf("supplier edges = %+v", out)
	}
}

func TestParseKeepRoot(t *testing.T) {
	g := parseSample(t, ParseOptions{})
	roots := g.Roots()
	if len(roots) != 1 || g.Node(roots[0]).Label != "db" {
		t.Fatalf("roots = %v", roots)
	}
}

func TestParseInteriorTextIgnored(t *testing.T) {
	g, err := ParseString(`<a>stray<b>leaf</b></a>`, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	as := findByLabel(g, "a")
	if g.Node(as[0]).Value != "" {
		t.Fatalf("interior node got value %q", g.Node(as[0]).Value)
	}
	bs := findByLabel(g, "b")
	if g.Node(bs[0]).Value != "leaf" {
		t.Fatalf("leaf value = %q", g.Node(bs[0]).Value)
	}
}

func TestParseAttrsAsChildren(t *testing.T) {
	g, err := ParseString(`<part key="1005" name="TV"/>`, ParseOptions{AttrsAsChildren: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := findByLabel(g, "key")
	if len(keys) != 1 || g.Node(keys[0]).Value != "1005" {
		t.Fatalf("key child = %v", keys)
	}
	if p, ok := g.ContainmentParent(keys[0]); !ok || g.Node(p).Label != "part" {
		t.Fatal("attribute child not contained in element")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unresolved idref": `<a><b ref="nope"/></a>`,
		"duplicate id":     `<a><b id="x"/><c id="x"/></a>`,
		"malformed":        `<a><b></a>`,
	}
	for name, doc := range cases {
		if _, err := ParseString(doc, ParseOptions{}); err == nil {
			t.Errorf("%s: no error for %q", name, doc)
		}
	}
}

func TestParseForwardReference(t *testing.T) {
	// IDREF appearing before the ID it targets must resolve.
	g, err := ParseString(`<a><b ref="later"/><c id="later"/></a>`, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bs := findByLabel(g, "b")
	cs := findByLabel(g, "c")
	out := g.Out(bs[0])
	if len(out) != 1 || out[0].To != cs[0] || out[0].Kind != Reference {
		t.Fatalf("forward ref not resolved: %+v", out)
	}
}

func TestParseLargeFanout(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<persons>")
	for i := 0; i < 500; i++ {
		sb.WriteString("<person><name>n</name></person>")
	}
	sb.WriteString("</persons>")
	g, err := ParseString(sb.String(), ParseOptions{OmitRoot: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Roots()); got != 500 {
		t.Fatalf("roots = %d, want 500", got)
	}
	if g.NumNodes() != 1000 {
		t.Fatalf("nodes = %d, want 1000", g.NumNodes())
	}
}
