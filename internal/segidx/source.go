package segidx

import (
	"repro/internal/kwindex"
)

// The Store serves reads through the same kwindex.Source interface as
// the in-memory index and the batch-built .xki reader, so the pipeline,
// executor, serving and presentation layers run unchanged over a live,
// writable index.
//
// Resolution walks the layer stack — optional base index, committed
// segments oldest first, sealed memtables, active memtable — with
// newest-wins masking per target object: a layer's posting is visible
// only if no newer layer claims its TO, where a claim is either a
// replacement document or a tombstone. Because every visible TO is
// owned by exactly one layer, the cross-layer union is disjoint by TO
// and needs no per-posting deduplication.

var (
	_ kwindex.Source         = (*Store)(nil)
	_ kwindex.FallibleSource = (*Store)(nil)
)

// layer is one level of the stack for a single resolution: its claim
// predicate (nil for the base, which masks nothing below it — there is
// nothing below it) and its posting lookup for one exact token.
type layer struct {
	claims func(int64) bool
	list   func(token string) []kwindex.Posting
}

// layers snapshots the current stack, oldest first. The snapshot stays
// valid after the store lock is released: segments are immutable,
// sealed memtables take no further writes, and the active memtable is
// internally synchronized.
func (s *Store) layers() []layer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ls := make([]layer, 0, len(s.segs)+len(s.sealed)+2)
	if s.opts.Base != nil {
		ls = append(ls, layer{claims: nil, list: s.opts.Base.ContainingList})
	}
	for _, sg := range s.segs {
		sg := sg
		ls = append(ls, layer{claims: sg.claims, list: sg.rd.ContainingList})
	}
	for _, m := range s.sealed {
		m := m
		ls = append(ls, layer{claims: m.claims, list: m.postingsOf})
	}
	ls = append(ls, layer{claims: s.mem.claims, list: s.mem.postingsOf})
	return ls
}

// tokenPostings resolves one exact token across the stack: each layer's
// postings survive unless a newer layer claims their target object.
func tokenPostings(ls []layer, token string) []kwindex.Posting {
	var out []kwindex.Posting
	for i, l := range ls {
		postings := l.list(token)
	scan:
		for _, p := range postings {
			for j := i + 1; j < len(ls); j++ {
				if ls[j].claims(p.TO) {
					continue scan
				}
			}
			out = append(out, p)
		}
	}
	sortPostings(out)
	return out
}

// ContainingList returns the containing list L(k) of §4 over the live
// layered index. Multi-token keywords intersect per-token lists by
// (TO, node), exactly as the in-memory index does.
func (s *Store) ContainingList(k string) []kwindex.Posting {
	toks := kwindex.Tokenize(k)
	if len(toks) == 0 {
		return nil
	}
	ls := s.layers()
	if len(toks) == 1 {
		return tokenPostings(ls, toks[0])
	}
	lists := make([][]kwindex.Posting, len(toks))
	for i, t := range toks {
		lists[i] = tokenPostings(ls, t)
	}
	return kwindex.Intersect(lists)
}

// SchemaNodes returns the distinct schema nodes whose extensions
// contain keyword k, sorted.
func (s *Store) SchemaNodes(k string) []string {
	return kwindex.DistinctSchemaNodes(s.ContainingList(k))
}

// TOSet returns the target objects containing keyword k, restricted to
// postings on the given schema node ("" for any).
func (s *Store) TOSet(k, schemaNode string) map[int64]bool {
	return kwindex.TOSetFromList(s.ContainingList(k), schemaNode)
}

// NumPostings reports the summed posting count across all layers — an
// upper bound on the logical count, since a masked older version of an
// updated document still contributes to its own layer's total. The
// optimizer uses these numbers as relative size signals, for which the
// bound is the right trade against walking every layer's postings.
func (s *Store) NumPostings() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	if s.opts.Base != nil {
		n += s.opts.Base.NumPostings()
	}
	for _, sg := range s.segs {
		n += sg.rd.NumPostings()
	}
	for _, m := range s.sealed {
		p, _ := m.counts()
		n += p
	}
	p, _ := s.mem.counts()
	return n + p
}

// NumKeywords reports the summed distinct-token count across all layers
// — an upper bound, since a token indexed in several layers is counted
// once per layer.
func (s *Store) NumKeywords() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	if s.opts.Base != nil {
		n += s.opts.Base.NumKeywords()
	}
	for _, sg := range s.segs {
		n += sg.rd.NumKeywords()
	}
	for _, m := range s.sealed {
		_, t := m.counts()
		n += t
	}
	_, t := s.mem.counts()
	return n + t
}

// Summary resolves a target object's presentation summary through the
// layer stack, newest first: the active memtable, the sealed
// memtables, then the committed segments (whose metas carry each doc's
// summary since format v2). ok=false means the store has no opinion —
// the TO was never ingested here (or was tombstoned, or came from a v1
// meta without summaries) — and the caller should fall back to the
// object graph. core.System.SummaryOf is that caller.
func (s *Store) Summary(to int64) (string, bool) {
	s.mu.RLock()
	mems := make([]*memtable, 0, len(s.sealed)+1)
	mems = append(mems, s.mem)
	for i := len(s.sealed) - 1; i >= 0; i-- {
		mems = append(mems, s.sealed[i])
	}
	segs := append([]*segment(nil), s.segs...)
	s.mu.RUnlock()
	for _, m := range mems {
		if sum, ok, claimed := m.summaryOf(to); claimed {
			return sum, ok
		}
	}
	for i := len(segs) - 1; i >= 0; i-- {
		if sum, ok := segs[i].docs[to]; ok {
			return sum, sum != ""
		}
		if segs[i].tombs[to] {
			return "", false
		}
	}
	return "", false
}

// Err reports the store's health: the first background flush or
// compaction failure, any segment reader's recorded fault, or the base
// index's own error when it is fallible. The serving layer's health
// endpoint consumes this through kwindex.FallibleSource.
func (s *Store) Err() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.bgErr != nil {
		return s.bgErr
	}
	for _, sg := range s.segs {
		if err := sg.rd.Err(); err != nil {
			return err
		}
	}
	if f, ok := s.opts.Base.(kwindex.FallibleSource); ok {
		if err := f.Err(); err != nil {
			return err
		}
	}
	return nil
}

// SegmentStats describes one committed segment.
type SegmentStats struct {
	ID       uint64 `json:"id"`
	Keywords int    `json:"keywords"`
	Postings int    `json:"postings"`
	Docs     int    `json:"docs"`
	Tombs    int    `json:"tombs"`
}

// Stats is a point-in-time snapshot of the store for debugging and the
// serving layer's introspection endpoint.
type Stats struct {
	Dir      string         `json:"dir"`
	Segments []SegmentStats `json:"segments"`
	MemDocs  int            `json:"mem_docs"`
	MemTombs int            `json:"mem_tombs"`
	MemOps   int            `json:"mem_ops"`
	MemBytes int64          `json:"mem_bytes"`
	Sealed   int            `json:"sealed_memtables"`
	WALSeq   uint64         `json:"wal_seq"`
	WALBytes int64          `json:"wal_bytes"`
	Flushes  int64          `json:"flushes"`
	Compacts int64          `json:"compactions"`
	Err      string         `json:"err,omitempty"`
}

// Stats snapshots the store's current shape.
func (s *Store) Stats() Stats {
	err := s.Err()
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Dir:      s.dir,
		Sealed:   len(s.sealed),
		WALSeq:   s.wal.id,
		WALBytes: s.wal.size,
		Flushes:  s.flushes,
		Compacts: s.compacts,
	}
	if err != nil {
		st.Err = err.Error()
	}
	for _, sg := range s.segs {
		st.Segments = append(st.Segments, SegmentStats{
			ID:       sg.id,
			Keywords: sg.rd.NumKeywords(),
			Postings: sg.rd.NumPostings(),
			Docs:     len(sg.docs),
			Tombs:    len(sg.tombs),
		})
	}
	st.MemDocs, st.MemTombs, st.MemOps, st.MemBytes = s.mem.stats()
	return st
}
