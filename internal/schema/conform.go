package schema

import (
	"fmt"
	"sort"

	"repro/internal/xmlgraph"
)

// Assign types every node of the data graph with its schema node and
// verifies conformance: roots must match root-capable schema nodes,
// containment children must match containment schema edges under their
// parent's type (with MaxOccurs respected), reference edges must match
// reference schema edges, and choice nodes must instantiate at most one
// alternative.
//
// Tags resolve context-dependently: a child element's schema node is the
// target of the unique containment edge under the parent's schema node
// whose Tag matches the element's tag. Ambiguity is a schema error.
func (g *Graph) Assign(data *xmlgraph.Graph) error {
	// Type roots first, then propagate down containment, then check
	// references.
	rootsByTag := make(map[string][]string)
	for _, name := range g.names {
		n := g.nodes[name]
		if n.Root {
			rootsByTag[n.Tag] = append(rootsByTag[n.Tag], name)
		}
	}
	var pending []xmlgraph.NodeID
	for _, id := range data.Roots() {
		node := data.Node(id)
		cands := rootsByTag[node.Label]
		if len(cands) == 0 {
			return fmt.Errorf("schema: root element <%s> (node %d) matches no root schema node", node.Label, id)
		}
		if len(cands) > 1 {
			return fmt.Errorf("schema: root tag <%s> is ambiguous among %v", node.Label, cands)
		}
		node.Type = cands[0]
		pending = append(pending, id)
	}

	for len(pending) > 0 {
		id := pending[0]
		pending = pending[1:]
		parent := data.Node(id)
		ptype := parent.Type
		childCount := make(map[string]int)
		for _, e := range data.Out(id) {
			if e.Kind != xmlgraph.Containment {
				continue
			}
			child := data.Node(e.To)
			var matches []Edge
			for _, se := range g.out[ptype] {
				if se.Kind == xmlgraph.Containment && g.nodes[se.To].Tag == child.Label {
					matches = append(matches, se)
				}
			}
			if len(matches) == 0 {
				return fmt.Errorf("schema: <%s> (node %d) may not contain <%s> (node %d)", ptype, id, child.Label, e.To)
			}
			if len(matches) > 1 {
				return fmt.Errorf("schema: tag <%s> under <%s> is ambiguous", child.Label, ptype)
			}
			se := matches[0]
			child.Type = se.To
			childCount[se.To]++
			if se.MaxOccurs != Unbounded && childCount[se.To] > se.MaxOccurs {
				return fmt.Errorf("schema: node %d has more than %d <%s> children", id, se.MaxOccurs, se.To)
			}
			pending = append(pending, e.To)
		}
		if g.IsChoice(ptype) {
			used := 0
			for _, c := range childCount {
				used += c
			}
			// Reference alternatives of the choice count as well.
			for _, e := range data.Out(id) {
				if e.Kind == xmlgraph.Reference {
					used++
				}
			}
			if used > 1 {
				return fmt.Errorf("schema: choice node %d (<%s>) instantiates %d alternatives", id, ptype, used)
			}
		}
	}

	// Every node must have been reached (typed); otherwise the graph has
	// containment components not anchored at a root.
	var untyped []xmlgraph.NodeID
	for _, id := range data.Nodes() {
		if data.Node(id).Type == "" {
			untyped = append(untyped, id)
		}
	}
	if len(untyped) > 0 {
		sort.Slice(untyped, func(i, j int) bool { return untyped[i] < untyped[j] })
		return fmt.Errorf("schema: %d nodes unreachable from roots (first: %d)", len(untyped), untyped[0])
	}

	// Reference edges.
	for _, id := range data.Nodes() {
		for _, e := range data.Out(id) {
			if e.Kind != xmlgraph.Reference {
				continue
			}
			ft, tt := data.Node(e.From).Type, data.Node(e.To).Type
			if _, ok := g.FindEdge(ft, tt, xmlgraph.Reference); !ok {
				return fmt.Errorf("schema: no reference edge %s->%s for data edge %d->%d", ft, tt, e.From, e.To)
			}
		}
	}
	return nil
}

// Conforms reports whether the (already typed or untyped) data graph
// conforms to the schema; it types the graph as a side effect.
func (g *Graph) Conforms(data *xmlgraph.Graph) bool {
	return g.Assign(data) == nil
}
