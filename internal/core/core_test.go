package core_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
)

func loadFig1(t *testing.T, opts core.Options) *core.System {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The §1 example end-to-end: "John, VCR" must return the size-6 result
// (John supplied the lineitem whose product mentions VCR) first, and
// size-8 results (VCR sub-parts of the TV John supplied) after it.
func TestIntroJohnVCR(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8})
	results, err := s.QueryAll([]string{"John", "VCR"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	if results[0].Score != 6 {
		t.Fatalf("best score = %d, want 6; result:\n%s", results[0].Score, s.RenderResult(results[0]))
	}
	top := strings.Join(s.ResultSummaries(results[0]), " | ")
	if !strings.Contains(top, "John") || !strings.Contains(top, "set of VCR and DVD") {
		t.Fatalf("top result wrong: %s", top)
	}
	var have8 int
	for _, r := range results {
		if r.Score == 8 {
			sum := strings.Join(s.ResultSummaries(r), " | ")
			if strings.Contains(sum, "John") && strings.Contains(sum, "VCR") {
				have8++
			}
		}
	}
	// Two VCR sub-parts × two lineitems referencing the TV... each size-8
	// MTTON is person—lineitem—part(TV)—part(VCR); at least two exist.
	if have8 < 2 {
		t.Fatalf("size-8 sub-part results = %d, want >= 2", have8)
	}
	// Scores must be non-decreasing.
	for i := 1; i < len(results); i++ {
		if results[i-1].Score > results[i].Score {
			t.Fatal("results not sorted by score")
		}
	}
}

// Figure 2's multivalued-dependency example: "US, VCR" over the fragment
// where two lineitems reference the TV part with two VCR sub-parts must
// produce the four results N1..N4 for that network shape.
func TestMVDRedundancy(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8})
	results, err := s.QueryAll([]string{"US", "VCR"})
	if err != nil {
		t.Fatal(err)
	}
	// Count results of the person{us}—lineitem—part—part{vcr} shape:
	// person + lineitem + 2 parts bound.
	byShape := make(map[string][]exec.Result)
	for _, r := range results {
		byShape[r.Net.Canon()] = append(byShape[r.Net.Canon()], r)
	}
	foundN := 0
	for _, group := range byShape {
		r := group[0]
		segs := make(map[string]int)
		for _, o := range r.Net.Occs {
			segs[o.Segment]++
		}
		if segs["person"] == 1 && segs["lineitem"] == 1 && segs["part"] == 2 && len(r.Net.Occs) == 4 {
			foundN += len(group)
		}
	}
	if foundN != 4 {
		t.Fatalf("MVD example: %d results of the N1..N4 shape, want 4", foundN)
	}
}

// The optimized (caching) and naive algorithms must produce identical
// result sets, for several queries and decompositions.
func TestCacheEquivalence(t *testing.T) {
	queries := [][]string{{"john", "vcr"}, {"us", "vcr"}, {"tv", "vcr"}, {"mike", "dvd"}}
	for _, preset := range []core.DecompositionPreset{core.PresetXKeyword, core.PresetMinClust} {
		cached := loadFig1(t, core.Options{Z: 8, Decomposition: preset, CacheSize: 0})
		naive := loadFig1(t, core.Options{Z: 8, Decomposition: preset, CacheSize: -1})
		for _, q := range queries {
			a, err := cached.QueryAll(q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := naive.QueryAll(q)
			if err != nil {
				t.Fatal(err)
			}
			if !sameResults(a, b) {
				t.Fatalf("%s/%v: cached %d results, naive %d", preset, q, len(a), len(b))
			}
		}
	}
}

// Every decomposition preset must return the same result sets.
func TestDecompositionEquivalence(t *testing.T) {
	presets := []core.DecompositionPreset{
		core.PresetXKeyword, core.PresetComplete, core.PresetMinClust,
		core.PresetMinNClustIndx, core.PresetMinNClustNIndx,
	}
	var baseline []exec.Result
	for i, p := range presets {
		s := loadFig1(t, core.Options{Z: 8, Decomposition: p})
		rs, err := s.QueryAll([]string{"john", "vcr"})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if i == 0 {
			baseline = rs
			continue
		}
		if !sameResults(baseline, rs) {
			t.Fatalf("%s: %d results, baseline %d", p, len(rs), len(baseline))
		}
	}
}

// Nested-loop and hash-join strategies must agree.
func TestStrategyEquivalence(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8})
	nl, err := s.QueryAllStrategy([]string{"us", "vcr"}, exec.NestedLoop)
	if err != nil {
		t.Fatal(err)
	}
	hj, err := s.QueryAllStrategy([]string{"us", "vcr"}, exec.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(nl, hj) {
		t.Fatalf("nested-loop %d results, hash-join %d", len(nl), len(hj))
	}
}

func sameResults(a, b []exec.Result) bool {
	ka := resultKeys(a)
	kb := resultKeys(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func resultKeys(rs []exec.Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Key()
	}
	sort.Strings(out)
	return out
}

func TestTopKStopsEarly(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8})
	all, err := s.QueryAll([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 3 {
		t.Fatalf("need >= 3 results for this test, got %d", len(all))
	}
	top, err := s.Query([]string{"us", "vcr"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("top-2 returned %d results", len(top))
	}
	// The top-k results' scores may not beat the global best.
	if top[0].Score < all[0].Score {
		t.Fatal("top-k produced a better-than-best score")
	}
}

func TestQueryValidation(t *testing.T) {
	s := loadFig1(t, core.Options{})
	if _, err := s.Query(nil, 5); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := s.Query([]string{"  "}, 5); err == nil {
		t.Fatal("blank keyword accepted")
	}
	rs, err := s.Query([]string{"doesnotexist", "john"}, 5)
	if err != nil || len(rs) != 0 {
		t.Fatalf("absent keyword: %v results, err %v", len(rs), err)
	}
}

func TestBlobsLoaded(t *testing.T) {
	s := loadFig1(t, core.Options{})
	for _, id := range s.Obj.Objects() {
		b, ok := s.Store.Blob(id)
		if !ok || len(b) == 0 {
			t.Fatalf("missing blob for TO %d", id)
		}
	}
	s2 := loadFig1(t, core.Options{SkipBlobs: true})
	if _, ok := s2.Store.Blob(s2.Obj.Objects()[0]); ok {
		t.Fatal("SkipBlobs ignored")
	}
}

func TestSizeBoundDBLP(t *testing.T) {
	// Figure 14's graph: all values sit one containment step below their
	// heads, so f(8) = 8 - 2 = 6 with two keywords, as §7 states.
	ds, err := datagen.DBLP(datagen.DefaultDBLPParams())
	if err != nil {
		t.Fatal(err)
	}
	if m := core.SizeBound(ds.TSS, ds.Data, 8, 2); m != 6 {
		t.Fatalf("SizeBound = %d, want 6", m)
	}
	if m := core.SizeBound(ds.TSS, ds.Data, 6, 2); m != 4 {
		t.Fatalf("SizeBound(6) = %d, want 4", m)
	}
}

func TestRenderResult(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8})
	rs, err := s.QueryAll([]string{"john", "vcr"})
	if err != nil || len(rs) == 0 {
		t.Fatalf("query: %v, %d results", err, len(rs))
	}
	out := s.RenderResult(rs[0])
	for _, frag := range []string{"John", "VCR", "«john»", "«vcr»"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
	// Edge annotations must appear ("supplied by" or its reverse).
	if !strings.Contains(out, "(") {
		t.Fatalf("render missing edge annotations:\n%s", out)
	}
}

func TestDBLPEndToEnd(t *testing.T) {
	ds, err := datagen.DBLP(datagen.DefaultDBLPParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
		core.Options{Z: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Two authors that co-author some paper (so a size-6 MTNN exists:
	// name-author-authorref-paper-authorref-author-name).
	var a1, a2 string
	for _, pa := range s.Obj.BySegment("paper") {
		var names []string
		for _, e := range s.Obj.Out(pa) {
			if s.Obj.TO(e.To).Segment == "author" {
				sum := s.Obj.Summary(e.To) // author[name=...]
				names = append(names, strings.TrimSuffix(strings.SplitN(sum, "name=", 2)[1], "]"))
			}
		}
		if len(names) >= 2 {
			a1, a2 = names[0], names[1]
			break
		}
	}
	if a1 == "" {
		t.Fatal("no co-authored paper in fixture")
	}
	rs, err := s.Query([]string{a1, a2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatalf("no results for %q, %q", a1, a2)
	}
	for _, r := range rs {
		if r.Score > 6 {
			t.Fatalf("score %d exceeds Z", r.Score)
		}
	}
}
