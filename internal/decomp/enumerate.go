package decomp

import (
	"sort"

	"repro/internal/cn"
	"repro/internal/tss"
)

// EnumerateFragments returns every non-useless fragment of size exactly n
// (walks over the TSS graph, deduplicated under reversal), sorted by Key.
// Set includeMVD to false to keep only 4NF/inlined fragments.
func EnumerateFragments(tg *tss.Graph, n int, includeMVD bool) []Fragment {
	if n <= 0 {
		return nil
	}
	seen := make(map[string]bool)
	var out []Fragment
	var extend func(steps []Step, at string)
	extend = func(steps []Step, at string) {
		if len(steps) == n {
			f, err := NewFragment(tg, steps)
			if err != nil {
				return
			}
			if f.IsUseless(tg) {
				return
			}
			if !includeMVD && f.HasMVD(tg) {
				return
			}
			if !seen[f.Key()] {
				seen[f.Key()] = true
				out = append(out, f)
			}
			return
		}
		for _, id := range tg.Out(at) {
			extend(append(steps, Step{EdgeID: id, Dir: Fwd}), tg.Edge(id).To)
		}
		for _, id := range tg.In(at) {
			extend(append(steps, Step{EdgeID: id, Dir: Bwd}), tg.Edge(id).From)
		}
	}
	for _, seg := range tg.Segments() {
		extend(nil, seg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// EnumerateShapes returns every structurally possible CTSSN shape with
// size (TSS edges) from 1 to maxSize: trees of segment occurrences whose
// edges instantiate TSS edges, pruned by the instance-impossibility rules
// (two reference-free parents, shared to-one choice prefixes, to-one
// edges used twice from one occurrence). Keyword annotations are ignored
// — coverage under a join budget depends only on the shape. The returned
// networks are deduplicated under isomorphism.
func EnumerateShapes(tg *tss.Graph, maxSize int) []*cn.TSSNetwork {
	seen := make(map[string]bool)
	var out []*cn.TSSNetwork
	var queue []*cn.TSSNetwork
	for _, seg := range tg.Segments() {
		t := &cn.TSSNetwork{Occs: []cn.TSSOcc{{Segment: seg}}}
		if k := t.Canon(); !seen[k] {
			seen[k] = true
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		if t.Size() >= 1 {
			out = append(out, t)
		}
		if t.Size() >= maxSize {
			continue
		}
		for v := range t.Occs {
			seg := t.Occs[v].Segment
			attach := func(id int, dir Dir) {
				e := tg.Edge(id)
				other := e.To
				if dir == Bwd {
					other = e.From
				}
				nt := &cn.TSSNetwork{
					Occs:  append(append([]cn.TSSOcc(nil), t.Occs...), cn.TSSOcc{Segment: other}),
					Edges: append(append([]cn.TSSEdgeRef(nil), t.Edges...), cn.TSSEdgeRef{}),
				}
				ni := len(nt.Occs) - 1
				if dir == Fwd {
					nt.Edges[len(nt.Edges)-1] = cn.TSSEdgeRef{From: v, To: ni, EdgeID: id}
				} else {
					nt.Edges[len(nt.Edges)-1] = cn.TSSEdgeRef{From: ni, To: v, EdgeID: id}
				}
				if !shapeAdmissible(tg, nt, v) {
					return
				}
				if k := nt.Canon(); !seen[k] {
					seen[k] = true
					queue = append(queue, nt)
				}
			}
			for _, id := range tg.Out(seg) {
				attach(id, Fwd)
			}
			for _, id := range tg.In(seg) {
				attach(id, Bwd)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size() != out[j].Size() {
			return out[i].Size() < out[j].Size()
		}
		return out[i].Canon() < out[j].Canon()
	})
	return out
}

// shapeAdmissible checks the instance-impossibility rules around
// occurrence v after an edge incident to v was added.
func shapeAdmissible(tg *tss.Graph, t *cn.TSSNetwork, v int) bool {
	var in, out []cn.TSSEdgeRef
	for _, e := range t.Edges {
		if e.To == v {
			in = append(in, e)
		}
		if e.From == v {
			out = append(out, e)
		}
	}
	// Two reference-free incoming edges: the occurrence's containment
	// ancestry is unique (useless rule 2 at shape level).
	nNoRef := 0
	for _, e := range in {
		if !tg.Edge(e.EdgeID).BackwardMany {
			nNoRef++
		}
	}
	if nNoRef > 1 {
		return false
	}
	// Outgoing edges sharing a to-one choice prefix, or one to-one edge
	// used twice (useless rule 1 at shape level).
	prefixes := make(map[string]int)
	perEdge := make(map[int]int)
	for _, e := range out {
		te := tg.Edge(e.EdgeID)
		if te.ChoicePrefix != "" {
			prefixes[te.ChoicePrefix]++
		}
		perEdge[e.EdgeID]++
	}
	for _, c := range prefixes {
		if c > 1 {
			return false
		}
	}
	for id, c := range perEdge {
		if c > 1 && !tg.Edge(id).ForwardMany {
			return false
		}
	}
	return true
}
