package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreName is the pseudo-analyzer under which malformed suppression
// directives are reported. Directive problems cannot themselves be
// suppressed — a typo in a directive must never silently disable a
// check.
const ignoreName = "ignore"

const ignorePrefix = "//xk:ignore"

// directive is one parsed //xk:ignore comment.
type directive struct {
	name   string // analyzer it suppresses
	reason string
	pos    token.Position
}

// fileDirectives extracts the ignore directives of one file, keyed by
// line, and appends a finding for every malformed one (missing reason,
// unknown analyzer name).
func fileDirectives(fset *token.FileSet, f *ast.File, known map[string]bool, report func(Finding)) map[int][]directive {
	out := make(map[int][]directive)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			// A line comment runs to end of line, so a second directive on
			// the same line is swallowed into this one's reason and would
			// suppress nothing. Reject the whole line rather than guess
			// which half was meant: malformed directives never suppress.
			if strings.Contains(rest, ignorePrefix) {
				report(Finding{Pos: pos, Name: ignoreName, Msg: "one //xk:ignore per line; the second directive is embedded in the first one's reason and suppresses nothing"})
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				report(Finding{Pos: pos, Name: ignoreName, Msg: "//xk:ignore needs an analyzer name and a reason"})
				continue
			}
			name := fields[0]
			if !known[name] {
				report(Finding{Pos: pos, Name: ignoreName, Msg: "//xk:ignore names unknown analyzer " + strconvQuote(name)})
				continue
			}
			reason := strings.TrimSpace(strings.Join(fields[1:], " "))
			if reason == "" {
				report(Finding{Pos: pos, Name: ignoreName, Msg: "//xk:ignore " + name + " needs a reason"})
				continue
			}
			out[pos.Line] = append(out[pos.Line], directive{name: name, reason: reason, pos: pos})
		}
	}
	return out
}

func strconvQuote(s string) string { return `"` + s + `"` }

// filterIgnored drops findings suppressed by a well-formed
// //xk:ignore <name> <reason> directive on the finding's line or the
// line directly above it, and adds findings for malformed directives.
func filterIgnored(fset *token.FileSet, files []*ast.File, findings []Finding) []Finding {
	known := KnownNames()
	var extra []Finding
	byFile := make(map[string]map[int][]directive)
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		byFile[name] = fileDirectives(fset, f, known, func(fd Finding) { extra = append(extra, fd) })
	}
	kept := findings[:0]
	for _, f := range findings {
		if suppressed(byFile[f.Pos.Filename], f) {
			continue
		}
		kept = append(kept, f)
	}
	return append(kept, extra...)
}

func suppressed(dirs map[int][]directive, f Finding) bool {
	if dirs == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range dirs[line] {
			if d.name == f.Name {
				return true
			}
		}
	}
	return false
}
