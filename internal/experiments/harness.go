// Package experiments regenerates the evaluation of §7: the
// decomposition comparison for top-k (Figure 15a) and full results
// (Figure 15b), the optimized-vs-naive execution speedup (Figure 16a),
// and the presentation-graph expansion comparison (Figure 16b). The
// workload mirrors the paper's: a DBLP-like database (synthetic
// citations, avg 20 per paper) queried with pairs of author names.
//
// Cost is reported both as wall-clock time and as simulated page reads
// against the relational substrate's buffer pool; the page-read series
// is the machine-independent "shape" EXPERIMENTS.md compares against the
// paper's curves.
package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/diskindex"
	"repro/internal/kwindex"
	"repro/internal/relstore"
)

// Config parameterizes an experiment run.
type Config struct {
	// DBLP sizes the dataset (default datagen.BenchDBLPParams).
	DBLP datagen.DBLPParams
	// Z and B configure the system (defaults 8 and 2, as in §7).
	Z, B int
	// Queries is how many author-pair queries to average over.
	Queries int
	// Ks is the top-K axis of Figure 15(a).
	Ks []int
	// Sizes is the CTSSN-size axis of Figures 15(b)/16(a)/16(b).
	Sizes []int
	// PoolPages bounds the buffer pool.
	PoolPages int
	// Seed drives query selection.
	Seed int64
	// DiskIndex serves every system's master index from a paged .xki
	// temp file through one shared buffer pool (cmd/xkbench -disk-index),
	// so the figures measure the disk-backed storage engine.
	DiskIndex bool
	// IndexCacheBytes budgets the disk-index buffer pool
	// (0 = diskindex.DefaultCacheBytes).
	IndexCacheBytes int64
}

// DefaultConfig returns the configuration used by cmd/xkbench.
func DefaultConfig() Config {
	return Config{
		DBLP:      datagen.BenchDBLPParams(),
		Z:         8,
		B:         2,
		Queries:   10,
		Ks:        []int{1, 5, 10, 20, 50, 100},
		Sizes:     []int{2, 3, 4, 5, 6},
		PoolPages: relstore.DefaultPoolPages,
		Seed:      42,
	}
}

// QuickConfig returns a small configuration for tests and -short runs.
func QuickConfig() Config {
	p := datagen.DefaultDBLPParams()
	p.AvgCitations = 8
	return Config{
		DBLP:      p,
		Z:         8,
		B:         2,
		Queries:   4,
		Ks:        []int{1, 5, 10},
		Sizes:     []int{2, 3, 4},
		PoolPages: 512,
		Seed:      42,
	}
}

func (c *Config) defaults() {
	if c.DBLP.Authors == 0 {
		c.DBLP = datagen.BenchDBLPParams()
	}
	if c.Z == 0 {
		c.Z = 8
	}
	if c.B == 0 {
		c.B = 2
	}
	if c.Queries == 0 {
		c.Queries = 10
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{1, 5, 10, 20, 50, 100}
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{2, 3, 4, 5, 6}
	}
	if c.PoolPages == 0 {
		c.PoolPages = relstore.DefaultPoolPages
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Point is one measured point of a series.
type Point struct {
	X       int     // K or CTSSN size
	Millis  float64 // average wall time per unit of work
	Cost    float64 // average weighted I/O cost (random + sequential/8)
	Lookups float64
	Results float64 // average result count
}

// Series is one labeled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is one reproduced figure.
type Figure struct {
	ID     string // e.g. "15a"
	Title  string
	XLabel string
	Series []Series
}

// Format renders the figure as an aligned text table, one row per X,
// one column group per series.
func (f Figure) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %s — %s\n", f.ID, f.Title)
	xs := map[int]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	var xlist []int
	for x := range xs {
		xlist = append(xlist, x)
	}
	sort.Ints(xlist)
	fmt.Fprintf(&sb, "%-8s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " | %-24s", s.Label)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-8s", "")
	for range f.Series {
		fmt.Fprintf(&sb, " | %9s %8s %7s %5s", "ms", "cost", "lkups", "res")
	}
	sb.WriteString("\n")
	for _, x := range xlist {
		fmt.Fprintf(&sb, "%-8d", x)
		for _, s := range f.Series {
			var pt *Point
			for i := range s.Points {
				if s.Points[i].X == x {
					pt = &s.Points[i]
				}
			}
			if pt == nil {
				fmt.Fprintf(&sb, " | %9s %8s %7s %5s", "-", "-", "-", "-")
				continue
			}
			fmt.Fprintf(&sb, " | %9.3f %8.1f %7.0f %5.0f", pt.Millis, pt.Cost, pt.Lookups, pt.Results)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// measure runs fn with reset store statistics and returns the elapsed
// time and the I/O delta.
func measure(store *relstore.Store, fn func()) (time.Duration, relstore.IOStats) {
	store.ResetStats()
	start := time.Now()
	fn()
	return time.Since(start), store.Stats.Snapshot()
}

// Workload is a prepared dataset plus the author-name query pairs used
// by every experiment, so figures share identical inputs.
type Workload struct {
	DS       *datagen.Dataset
	Prepared *core.Prepared
	Pairs    [][2]string
	Config   Config

	// Disk-backed master index, built once and shared by every system of
	// the workload when Config.DiskIndex is set.
	diskOnce sync.Once
	diskRd   *diskindex.Reader
	diskErr  error
}

// NewWorkload generates the dataset and selects Queries author pairs:
// half co-author pairs (guaranteed small results) and half random pairs.
func NewWorkload(cfg Config) (*Workload, error) {
	cfg.defaults()
	ds, err := datagen.DBLP(cfg.DBLP)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		DS:       ds,
		Prepared: &core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
		Config:   cfg,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Co-author pairs.
	var coPairs [][2]string
	papers := ds.Obj.BySegment("paper")
	for _, pi := range rng.Perm(len(papers)) {
		pa := papers[pi]
		var names []string
		for _, e := range ds.Obj.Out(pa) {
			if ds.Obj.TO(e.To).Segment == "author" {
				names = append(names, authorNameOf(ds, e.To))
			}
		}
		if len(names) >= 2 {
			coPairs = append(coPairs, [2]string{names[0], names[1]})
		}
		if len(coPairs) >= (cfg.Queries+1)/2 {
			break
		}
	}
	w.Pairs = append(w.Pairs, coPairs...)
	// Random author pairs.
	authors := ds.Obj.BySegment("author")
	for len(w.Pairs) < cfg.Queries && len(authors) >= 2 {
		i, j := rng.Intn(len(authors)), rng.Intn(len(authors))
		if i == j {
			continue
		}
		w.Pairs = append(w.Pairs, [2]string{authorNameOf(ds, authors[i]), authorNameOf(ds, authors[j])})
	}
	if len(w.Pairs) == 0 {
		return nil, fmt.Errorf("experiments: no query pairs available")
	}
	return w, nil
}

func authorNameOf(ds *datagen.Dataset, to int64) string {
	sum := ds.Obj.Summary(to) // author[name=...]
	return strings.TrimSuffix(strings.SplitN(sum, "name=", 2)[1], "]")
}

// load builds a System over the shared dataset with a preset.
func (w *Workload) load(preset core.DecompositionPreset, cacheSize int) (*core.System, error) {
	sys, err := core.LoadPrepared(w.Prepared, core.Options{
		Z:             w.Config.Z,
		B:             w.Config.B,
		Decomposition: preset,
		PoolPages:     w.Config.PoolPages,
		CacheSize:     cacheSize,
		SkipBlobs:     true,
	})
	if err != nil {
		return nil, err
	}
	if w.Config.DiskIndex {
		rd, err := w.diskReader()
		if err != nil {
			return nil, err
		}
		sys.Index = rd
	}
	return sys, nil
}

// diskReader lazily serializes the dataset's master index to an unlinked
// temp .xki file and opens the shared paged reader over it.
func (w *Workload) diskReader() (*diskindex.Reader, error) {
	w.diskOnce.Do(func() {
		f, err := os.CreateTemp("", "xkbench-*.xki")
		if err != nil {
			w.diskErr = err
			return
		}
		path := f.Name()
		if err := f.Close(); err != nil {
			w.diskErr = err
			return
		}
		if err := diskindex.Create(path, kwindex.Build(w.DS.Obj)); err != nil {
			os.Remove(path) //xk:ignore errdrop best-effort temp-file cleanup; the create error is what matters
			w.diskErr = err
			return
		}
		w.diskRd, w.diskErr = diskindex.Open(path, diskindex.Options{CacheBytes: w.Config.IndexCacheBytes})
		//xk:ignore errdrop unlink may fail without affecting the open handle, which keeps the file alive
		os.Remove(path)
	})
	return w.diskRd, w.diskErr
}
