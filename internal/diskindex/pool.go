package diskindex

import (
	"container/list"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// pagePool is a fixed-capacity sharded LRU buffer pool over the posting
// region of the index file. Pages are immutable once read, so eviction
// merely drops the pool's reference — slices handed to a decoder stay
// valid. Shards are keyed by page number, which spreads the sequential
// pages of one long posting list across shards.
type pagePool struct {
	src      io.ReaderAt
	base     int64 // file offset of the pooled region
	length   int64 // region length in bytes
	pageSize int64
	shards   []poolShard
	perShard int // page capacity per shard, ≥ 1
	retry    fault.RetryPolicy

	hits      atomic.Int64
	misses    atomic.Int64
	bytesRead atomic.Int64
	retries   atomic.Int64 // reads that succeeded only after retrying
}

type poolShard struct {
	mu sync.Mutex
	ll *list.List              // guarded by mu; front = most recently used
	m  map[int64]*list.Element // guarded by mu
}

type poolPage struct {
	no   int64
	data []byte
}

func newPagePool(src io.ReaderAt, base, length int64, pageSize int, cacheBytes int64, shards int, retry fault.RetryPolicy) *pagePool {
	if shards < 1 {
		shards = 1
	}
	p := &pagePool{
		src:      src,
		base:     base,
		length:   length,
		pageSize: int64(pageSize),
		shards:   make([]poolShard, shards),
		retry:    retry,
	}
	p.perShard = int(cacheBytes / int64(pageSize) / int64(shards))
	if p.perShard < 1 {
		p.perShard = 1
	}
	for i := range p.shards {
		p.shards[i].ll = list.New()
		p.shards[i].m = make(map[int64]*list.Element)
	}
	return p
}

// page returns the pooled page no, reading it on a miss. The returned
// slice is shared and read-only.
func (p *pagePool) page(no int64) ([]byte, error) {
	sh := &p.shards[no%int64(len(p.shards))]
	sh.mu.Lock()
	if el, ok := sh.m[no]; ok {
		sh.ll.MoveToFront(el)
		data := el.Value.(*poolPage).data
		sh.mu.Unlock()
		p.hits.Add(1)
		return data, nil
	}
	sh.mu.Unlock()
	p.misses.Add(1)

	// Read outside the shard lock; concurrent misses on the same page do
	// duplicate reads, which is benign (the page is immutable).
	size := p.pageSize
	if rem := p.length - no*p.pageSize; rem < size {
		size = rem
	}
	if size <= 0 {
		return nil, fmt.Errorf("diskindex: page %d beyond posting region", no)
	}
	buf := make([]byte, size)
	// Bounded retry with backoff: a transient device hiccup should not
	// poison the reader when one more attempt would have succeeded.
	attempts := 0
	err := p.retry.Do(func() error {
		attempts++
		_, rerr := p.src.ReadAt(buf, p.base+no*p.pageSize)
		return rerr
	})
	if err != nil {
		return nil, fmt.Errorf("%w: reading page %d (%d attempts): %w", ErrIO, no, attempts, err)
	}
	if attempts > 1 {
		p.retries.Add(1)
	}
	p.bytesRead.Add(size)

	sh.mu.Lock()
	if el, ok := sh.m[no]; ok { // raced with another reader; keep theirs
		sh.ll.MoveToFront(el)
		buf = el.Value.(*poolPage).data
	} else {
		sh.m[no] = sh.ll.PushFront(&poolPage{no: no, data: buf})
		for sh.ll.Len() > p.perShard {
			oldest := sh.ll.Back()
			sh.ll.Remove(oldest)
			delete(sh.m, oldest.Value.(*poolPage).no)
		}
	}
	sh.mu.Unlock()
	return buf, nil
}

// readRange returns bytes [off, off+n) of the pooled region. A range
// within one page aliases the page buffer (no copy); spanning ranges are
// gathered into a fresh slice.
func (p *pagePool) readRange(off, n int64) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	if off < 0 || n < 0 || off+n > p.length {
		return nil, fmt.Errorf("diskindex: posting range [%d,%d) outside region of %d bytes", off, off+n, p.length)
	}
	first, last := off/p.pageSize, (off+n-1)/p.pageSize
	if first == last {
		pg, err := p.page(first)
		if err != nil {
			return nil, err
		}
		return pg[off-first*p.pageSize:][:n], nil
	}
	out := make([]byte, 0, n)
	for no := first; no <= last; no++ {
		pg, err := p.page(no)
		if err != nil {
			return nil, err
		}
		lo := int64(0)
		if no == first {
			lo = off - first*p.pageSize
		}
		hi := int64(len(pg))
		if no == last {
			hi = off + n - last*p.pageSize
		}
		out = append(out, pg[lo:hi]...)
	}
	return out, nil
}

// resident returns the number of pages currently pooled.
func (p *pagePool) resident() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}
