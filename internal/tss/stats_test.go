package tss_test

import (
	"testing"

	"repro/internal/datagen"
)

func TestCollectStats(t *testing.T) {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	st := ds.Obj.CollectStats()
	if st.Count["person"] != 2 || st.Count["lineitem"] != 3 || st.Count["part"] != 3 {
		t.Fatalf("counts = %v", st.Count)
	}
	// person -> order: 1 order, 2 persons => forward fanout 0.5; each
	// order has exactly one person => backward 1.
	var persOrd int = -1
	for _, e := range ds.TSS.Edges() {
		if e.PathString() == "person>order" {
			persOrd = e.ID
		}
	}
	if persOrd < 0 {
		t.Fatal("edge not found")
	}
	if got := st.Fanout(persOrd, true); got != 0.5 {
		t.Fatalf("forward fanout = %v", got)
	}
	if got := st.Fanout(persOrd, false); got != 1 {
		t.Fatalf("backward fanout = %v", got)
	}
	// Unknown edge ids fan out to zero.
	if st.Fanout(999, true) != 0 {
		t.Fatal("unknown edge has fanout")
	}
}

func TestStatsOnSyntheticTPCH(t *testing.T) {
	p := datagen.DefaultTPCHParams()
	ds, err := datagen.TPCH(p)
	if err != nil {
		t.Fatal(err)
	}
	st := ds.Obj.CollectStats()
	if st.Count["person"] != p.Persons {
		t.Fatalf("persons = %d", st.Count["person"])
	}
	var persOrd int = -1
	for _, e := range ds.TSS.Edges() {
		if e.PathString() == "person>order" {
			persOrd = e.ID
		}
	}
	if got := st.Fanout(persOrd, true); got != float64(p.OrdersPerPerson) {
		t.Fatalf("orders/person = %v, want %d", got, p.OrdersPerPerson)
	}
}
