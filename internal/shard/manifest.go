package shard

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/atomicio"
)

// ManifestName is the manifest's file name inside the shard root.
const ManifestName = "SHARDS"

// manifestMagic is the first token of the manifest's header line.
const manifestMagic = "XKSHARDS1"

// Manifest records a completed split: the shard count, the hash scheme
// (so a coordinator or server built with a different Partition cannot
// silently misroute), and the per-shard file CRCs that verification
// recomputes. It is stored as a header line "XKSHARDS1 <crc32-hex>\n"
// followed by the JSON body the CRC covers, written atomically.
type Manifest struct {
	Version int         `json:"version"`
	Scheme  string      `json:"scheme"`
	N       int         `json:"n"`
	Shards  []ShardInfo `json:"shards"`
}

// ShardInfo describes one shard directory of a split.
type ShardInfo struct {
	ID int `json:"id"`
	// Dir is the shard's directory, relative to the shard root.
	Dir string `json:"dir"`
	// Index is the partition's .xki file name inside Dir.
	Index string `json:"index"`
	// CRC is the crc32 (IEEE) of the .xki file's bytes.
	CRC uint32 `json:"crc"`
	// Postings and Keywords are the partition's index sizes, for stats.
	Postings int `json:"postings"`
	Keywords int `json:"keywords"`
	// Addrs optionally records where this shard's replica group serves
	// (base URLs). A deployment that writes them gets "-coordinator auto":
	// the coordinator reads its replica topology straight from the
	// manifest instead of a flag. Every listed address must serve a
	// byte-identical copy of this shard (CRC above); Validate checks.
	Addrs []string `json:"addrs,omitempty"`
}

// Topology returns the manifest's recorded replica topology: one
// address list per shard, in shard-id order. It errors when any shard
// has no recorded addresses — a partial topology cannot route.
func (m *Manifest) Topology() ([][]string, error) {
	groups := make([][]string, m.N)
	for i, si := range m.Shards {
		if len(si.Addrs) == 0 {
			return nil, fmt.Errorf("shard: manifest records no replica addresses for shard %d; pass an explicit topology", i)
		}
		groups[i] = append([]string(nil), si.Addrs...)
	}
	return groups, nil
}

// WriteManifest commits the manifest atomically under dir.
func WriteManifest(dir string, m *Manifest) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("shard: encoding manifest: %w", err)
	}
	header := fmt.Sprintf("%s %08x\n", manifestMagic, crc32.ChecksumIEEE(body))
	return atomicio.WriteFile(filepath.Join(dir, ManifestName), func(f *os.File) error {
		if _, err := f.WriteString(header); err != nil {
			return err
		}
		_, err := f.Write(body)
		return err
	})
}

// LoadManifest reads and validates the manifest of a shard root: the
// magic, the CRC over the JSON body, the hash scheme and the internal
// consistency of the shard list. Every failure is loud and names the
// file — a coordinator must refuse to start on a manifest it cannot
// trust, not guess a partition layout.
func LoadManifest(dir string) (*Manifest, error) {
	path := filepath.Join(dir, ManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: reading manifest: %w", err)
	}
	var magic string
	var sum uint32
	n, err := fmt.Sscanf(string(raw), "%s %08x\n", &magic, &sum)
	if err != nil || n != 2 || magic != manifestMagic {
		return nil, fmt.Errorf("shard: %s: not a shard manifest (bad header)", path)
	}
	nl := indexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("shard: %s: not a shard manifest (no body)", path)
	}
	body := raw[nl+1:]
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("shard: %s: manifest CRC mismatch (recorded %08x, computed %08x): corrupt or torn", path, sum, got)
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("shard: %s: decoding manifest: %w", path, err)
	}
	if m.Scheme != HashScheme {
		return nil, fmt.Errorf("shard: %s: hash scheme %q is not this binary's %q; re-split or use a matching build", path, m.Scheme, HashScheme)
	}
	if m.N <= 0 || len(m.Shards) != m.N {
		return nil, fmt.Errorf("shard: %s: manifest lists %d shards for n=%d", path, len(m.Shards), m.N)
	}
	for i, si := range m.Shards {
		if si.ID != i {
			return nil, fmt.Errorf("shard: %s: shard %d recorded with id %d", path, i, si.ID)
		}
	}
	return &m, nil
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// FileCRC computes the crc32 (IEEE) of a file's bytes — the checksum the
// manifest records per shard index.
func FileCRC(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close() //xk:ignore errdrop read-only file; Close cannot lose data
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}
