package obs

import (
	"sync"
	"testing"
	"time"
)

func TestDisabledTraceIsFreeAndSafe(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil trace returned spans: %v", got)
	}
	if tr.Elapsed() != 0 {
		t.Fatal("nil trace elapsed != 0")
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Add(Span{Stage: "execute", In: 4, Out: 7})
	})
	if allocs != 0 {
		t.Fatalf("disabled trace allocated %.1f per Add, want 0", allocs)
	}
}

// TestNilCounterAndHistogramAreSafe pins the documented contract the
// nilrecv analyzer enforces: a nil sink is a valid no-op.
func TestNilCounterAndHistogramAreSafe(t *testing.T) {
	var c *Counter
	c.Add(3)
	if got := c.Load(); got != 0 {
		t.Fatalf("nil counter Load = %d, want 0", got)
	}
	var h *Histogram
	h.Observe(time.Millisecond)
	if got := h.Count(); got != 0 {
		t.Fatalf("nil histogram Count = %d, want 0", got)
	}
	if got := h.Sum(); got != 0 {
		t.Fatalf("nil histogram Sum = %v, want 0", got)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram Quantile = %v, want 0", got)
	}
}

func TestTraceCollectsSpans(t *testing.T) {
	tr := NewTrace()
	tr.Add(Span{Stage: "discover", In: 2, Out: 3})
	tr.Add(Span{Stage: "generate", In: 2, Out: 5, CacheMisses: 1})
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Stage != "discover" || spans[1].Stage != "generate" {
		t.Fatalf("span order wrong: %v", spans)
	}
	if spans[1].CacheMisses != 1 {
		t.Fatal("cache miss not recorded")
	}
	// The returned slice is a copy: mutating it must not corrupt the trace.
	spans[0].Stage = "clobbered"
	if tr.Spans()[0].Stage != "discover" {
		t.Fatal("Spans returned the internal slice")
	}
	if tr.Elapsed() <= 0 {
		t.Fatal("elapsed not positive on enabled trace")
	}
}

func TestTraceConcurrentAdd(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Add(Span{Stage: "execute"})
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Fatalf("got %d spans, want 800", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	wantSum := 90*10*time.Microsecond + 10*10*time.Millisecond
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	p50, p95 := h.Quantile(0.50), h.Quantile(0.95)
	if p50 > time.Millisecond {
		t.Fatalf("p50 = %v, want ≤1ms", p50)
	}
	if p95 < time.Millisecond {
		t.Fatalf("p95 = %v, want ≥1ms", p95)
	}
	if h.Quantile(1.0) < p95 {
		t.Fatal("p100 < p95")
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	// Negative durations clamp to the first bucket instead of panicking.
	h.Observe(-time.Second)
	if h.Count() != 101 {
		t.Fatal("negative observation dropped")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Load())
	}
}
