package exec

import (
	"context"
	"fmt"

	"repro/internal/optimizer"
	"repro/internal/relstore"
)

// EvaluateHash evaluates a plan bottom-up with full scans and hash
// joins: each piece's relation is scanned once (filtered by the keyword
// sets), then intermediate results are hash-joined in plan order. With
// small relations this is the fastest way to produce ALL results of a
// CN — the §7 finding that makes MinNClustNIndx win Figure 15(b).
func (ex *Executor) EvaluateHash(p *optimizer.Plan, emit func(Result) bool) error {
	return ex.EvaluateHashContext(context.Background(), p, emit)
}

// EvaluateHashContext is EvaluateHash with cooperative cancellation: the
// scan and join loops poll ctx periodically, so a cancelled context
// stops the evaluation between tuples and the call returns ctx's error.
func (ex *Executor) EvaluateHashContext(ctx context.Context, p *optimizer.Plan, emit func(Result) bool) error {
	if len(p.Steps) == 0 {
		return fmt.Errorf("exec: empty plan")
	}
	cc := newCancelCheck(ctx)
	if cc.err != nil {
		return cc.err
	}
	// Intermediate result: tuples of bindings over a growing occurrence
	// set, stored as slices aligned with boundOccs.
	var boundOccs []int
	var tuples [][]int64

	occPos := func(occ int) int {
		for i, o := range boundOccs {
			if o == occ {
				return i
			}
		}
		return -1
	}

	for _, s := range p.Steps {
		if s.Seed {
			var next [][]int64
			for _, to := range p.SortedFilter(s.Occ) {
				next = append(next, []int64{to})
			}
			boundOccs = []int{s.Occ}
			tuples = next
			continue
		}
		rel := ex.Store.Relation(s.Piece.Frag.RelationName())
		if rel == nil {
			return fmt.Errorf("exec: relation %s not materialized", s.Piece.Frag.RelationName())
		}
		// Scan and pre-filter the piece's rows.
		var rows []relstore.Row
		rel.Scan(func(row relstore.Row) bool {
			if cc.tick() {
				return false
			}
			for pos, occ := range s.Piece.Occs {
				if f := p.Filters[occ]; f != nil && !f[row[pos]] {
					return true
				}
			}
			rows = append(rows, append(relstore.Row(nil), row...))
			return true
		})
		if cc.err != nil {
			return cc.err
		}
		// Hash rows on the probe column.
		ht := make(map[int64][]relstore.Row, len(rows))
		for _, row := range rows {
			ht[row[s.ProbePos]] = append(ht[row[s.ProbePos]], row)
		}
		probeOcc := s.Piece.Occs[s.ProbePos]
		probeIdx := occPos(probeOcc)
		if probeIdx < 0 {
			return fmt.Errorf("exec: hash join piece not connected")
		}
		newOccs := append([]int(nil), boundOccs...)
		for _, pos := range s.NewPos {
			newOccs = append(newOccs, s.Piece.Occs[pos])
		}
		var next [][]int64
		for _, t := range tuples {
			if cc.tick() {
				return cc.err
			}
			for _, row := range ht[t[probeIdx]] {
				ok := true
				for _, pos := range s.CheckPos {
					if ci := occPos(s.Piece.Occs[pos]); ci < 0 || t[ci] != row[pos] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				nt := append(append([]int64(nil), t...), make([]int64, len(s.NewPos))...)
				for i, pos := range s.NewPos {
					nt[len(t)+i] = row[pos]
				}
				// Distinct target objects across the tree.
				if hasDup(nt) {
					continue
				}
				next = append(next, nt)
			}
		}
		boundOccs = newOccs
		tuples = next
	}
	for _, t := range tuples {
		if cc.now() {
			return cc.err
		}
		bind := make([]int64, len(p.Net.Occs))
		for i, occ := range boundOccs {
			bind[occ] = t[i]
		}
		if !emit(Result{Net: p.Net, Bind: bind, Score: p.Net.Score()}) {
			return nil
		}
	}
	return cc.err
}

func hasDup(xs []int64) bool {
	for i := range xs {
		for j := i + 1; j < len(xs); j++ {
			if xs[i] == xs[j] {
				return true
			}
		}
	}
	return false
}

// Strategy selects an evaluation algorithm.
type Strategy uint8

const (
	// NestedLoop probes connection relations per binding (top-k friendly).
	NestedLoop Strategy = iota
	// HashJoin scans each relation once and joins in memory (full-result
	// friendly on unindexed decompositions).
	HashJoin
	// AutoStrategy picks HashJoin when no relation of the plan has an
	// index or clustering, NestedLoop otherwise — the choice a DBMS
	// optimizer would make (§7).
	AutoStrategy
)

// Run evaluates with the chosen strategy.
func (ex *Executor) Run(p *optimizer.Plan, s Strategy, emit func(Result) bool) error {
	return ex.RunContext(context.Background(), p, s, emit)
}

// RunContext is Run with cooperative cancellation (see EvaluateContext).
func (ex *Executor) RunContext(ctx context.Context, p *optimizer.Plan, s Strategy, emit func(Result) bool) error {
	if s == AutoStrategy {
		s = NestedLoop
		if !ex.planIndexed(p) {
			s = HashJoin
		}
	}
	if s == HashJoin {
		return ex.EvaluateHashContext(ctx, p, emit)
	}
	return ex.EvaluateContext(ctx, p, emit)
}

// planIndexed reports whether any piece relation offers an index or a
// clustered order on its probe column.
func (ex *Executor) planIndexed(p *optimizer.Plan) bool {
	for _, s := range p.Steps {
		if s.Seed {
			continue
		}
		rel := ex.Store.Relation(s.Piece.Frag.RelationName())
		if rel == nil {
			continue
		}
		if rel.HasHashIndex(s.ProbePos) {
			return true
		}
		if _, ok := rel.ClusteredOn([]int{s.ProbePos}); ok {
			return true
		}
	}
	return false
}
