package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/kwindex"
	"repro/internal/rank"
)

func mustSameResults(t *testing.T, tag string, got, want []exec.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", tag, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Score != w.Score || g.Ord != w.Ord || !reflect.DeepEqual(g.Bind, w.Bind) || g.Net.Canon() != w.Net.Canon() {
			t.Fatalf("%s: result %d differs:\ngot  score=%d ord=%x bind=%v\nwant score=%d ord=%x bind=%v",
				tag, i, g.Score, g.Ord, g.Bind, w.Score, w.Ord, w.Bind)
		}
	}
}

// TestDefaultScorerEquivalence is the randomized refactor-equivalence
// suite: for a seeded batch of queries, the scored entry points with the
// default scorer (explicitly and via "") must return byte-identical
// answers to the pre-scorer Query path, with no relaxation record.
func TestDefaultScorerEquivalence(t *testing.T) {
	ds, err := datagen.TPCH(datagen.TPCHParams{
		Persons: 12, OrdersPerPerson: 2, LineitemsPerOrder: 2,
		Parts: 8, SubsPerPart: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix := kwindex.Build(sys.Obj)
	var vocab []string
	for _, term := range ix.Terms() {
		if len(ix.ContainingList(term)) >= 2 {
			vocab = append(vocab, term)
		}
	}
	if len(vocab) < 4 {
		t.Fatalf("only %d multi-posting terms", len(vocab))
	}
	rng := rand.New(rand.NewSource(99))
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		var kws []string
		seen := map[string]bool{}
		for len(kws) < 2 {
			w := vocab[rng.Intn(len(vocab))]
			if !seen[w] {
				seen[w] = true
				kws = append(kws, w)
			}
		}
		k := []int{1, 3, 10}[rng.Intn(3)]
		want, err := sys.QueryContext(ctx, kws, k)
		if err != nil {
			t.Fatalf("%v: %v", kws, err)
		}
		for _, name := range []string{"", rank.DefaultName} {
			got, rx, err := sys.QueryScoredContext(ctx, kws, k, name)
			if err != nil {
				t.Fatalf("%v scorer %q: %v", kws, name, err)
			}
			if rx != nil {
				t.Fatalf("%v scorer %q: unexpected relaxation %v", kws, name, rx)
			}
			mustSameResults(t, fmt.Sprintf("%v k=%d scorer=%q", kws, k, name), got, want)
		}
		// The all-results path too.
		wantAll, err := sys.QueryAllContext(ctx, kws)
		if err != nil {
			t.Fatal(err)
		}
		gotAll, rx, err := sys.QueryAllScoredContext(ctx, kws, "")
		if err != nil {
			t.Fatal(err)
		}
		if rx != nil {
			t.Fatalf("all-path relaxation: %v", rx)
		}
		mustSameResults(t, fmt.Sprintf("%v all", kws), gotAll, wantAll)
	}
}

// Non-default scorers must equal the scorer applied directly to the
// canonical full enumeration — the pipeline's plumbing (full-enumeration
// execute, rank-stage hand-off, context fields) adds or drops nothing.
func TestScoredMatchesDirectRank(t *testing.T) {
	sys := loadFig1(t, core.Options{Z: 8})
	ctx := context.Background()
	kws := []string{"john", "vcr"}
	all, err := sys.QueryAllContext(ctx, kws)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 3 {
		t.Fatalf("only %d results — dataset too small to rank", len(all))
	}
	src, ok := sys.Index.(kwindex.Source)
	if !ok {
		t.Fatalf("index %T is not a kwindex.Source", sys.Index)
	}
	for _, name := range []string{"weighted", "diversified"} {
		for _, k := range []int{0, 2} {
			sc, err := rank.New(name)
			if err != nil {
				t.Fatal(err)
			}
			want := sc.Rank(rank.Context{TSS: sys.TSS, Index: src, Keywords: kws},
				append([]exec.Result(nil), all...), k)
			var got []exec.Result
			if k == 0 {
				got, _, err = sys.QueryAllScoredContext(ctx, kws, name)
			} else {
				got, _, err = sys.QueryScoredContext(ctx, kws, k, name)
			}
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			mustSameResults(t, fmt.Sprintf("%s k=%d", name, k), got, want)
		}
	}
	// Determinism across runs.
	a, _, err := sys.QueryScoredContext(ctx, kws, 5, "weighted")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := sys.QueryScoredContext(ctx, kws, 5, "weighted")
	if err != nil {
		t.Fatal(err)
	}
	mustSameResults(t, "weighted determinism", a, b)
}

// Opts.Scorer is the engine default; per-query names override it and
// unknown names fail loudly at load and at query time.
func TestScorerSelection(t *testing.T) {
	sys := loadFig1(t, core.Options{Z: 8, Scorer: "diversified"})
	ctx := context.Background()
	kws := []string{"john", "vcr"}
	viaDefault, _, err := sys.QueryScoredContext(ctx, kws, 5, "")
	if err != nil {
		t.Fatal(err)
	}
	viaName, _, err := sys.QueryScoredContext(ctx, kws, 5, "diversified")
	if err != nil {
		t.Fatal(err)
	}
	mustSameResults(t, "opts default", viaDefault, viaName)
	if _, _, err := sys.QueryScoredContext(ctx, kws, 5, "nope"); err == nil {
		t.Fatal("unknown per-query scorer did not error")
	}
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
		core.Options{Scorer: "nope"}); err == nil {
		t.Fatal("unknown Opts.Scorer did not fail the load")
	}
}

// Relaxation: with Relax on, an unmatched keyword is dropped (or a
// multi-token phrase substituted by its matching token) and the answer
// carries the exact record; with Relax off nothing is rewritten.
func TestRelaxation(t *testing.T) {
	sys := loadFig1(t, core.Options{Z: 8, Relax: true})
	ctx := context.Background()

	// Dropped keyword: answers equal the reduced query's.
	got, rx, err := sys.QueryScoredContext(ctx, []string{"john", "zzznope"}, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	if rx == nil || len(rx.Dropped) != 1 || rx.Dropped[0] != "zzznope" {
		t.Fatalf("relaxation = %+v, want zzznope dropped", rx)
	}
	want, rxWant, err := sys.QueryScoredContext(ctx, []string{"john"}, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	if rxWant != nil {
		t.Fatalf("clean query relaxed: %+v", rxWant)
	}
	mustSameResults(t, "dropped keyword", got, want)

	// Phrase substitution: the individually-matching token survives.
	got, rx, err = sys.QueryScoredContext(ctx, []string{"john zzznope", "vcr"}, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	if rx == nil || rx.Substituted["john zzznope"] != "john" {
		t.Fatalf("relaxation = %+v, want phrase substituted by john", rx)
	}
	want, _, err = sys.QueryScoredContext(ctx, []string{"john", "vcr"}, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	mustSameResults(t, "substituted phrase", got, want)

	// Everything unmatched: empty answer, full record, no error.
	got, rx, err = sys.QueryScoredContext(ctx, []string{"zzznope", "qqnever"}, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("all-dropped query returned %d results", len(got))
	}
	if rx == nil || len(rx.Dropped) != 2 {
		t.Fatalf("relaxation = %+v, want both dropped", rx)
	}

	// Relax off: no rewriting, no record, empty answer.
	strict := loadFig1(t, core.Options{Z: 8})
	got, rx, err = strict.QueryScoredContext(ctx, []string{"john", "zzznope"}, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	if rx != nil {
		t.Fatalf("relax off but relaxation record: %+v", rx)
	}
	if len(got) != 0 {
		t.Fatalf("relax off: unmatched keyword produced %d results", len(got))
	}
}
