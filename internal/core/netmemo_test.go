package core

import (
	"fmt"
	"testing"

	"repro/internal/cn"
	"repro/internal/datagen"
)

// The CN memo used to be a package-global sync.Map keyed by
// *schema.Graph with no eviction: every loaded system's generated
// networks stayed reachable for the life of the process. These are the
// regression tests for the fix — the memo is per-System and bounded.

func TestNetMemoBounded(t *testing.T) {
	mm := newNetMemo(4)
	for i := 0; i < 32; i++ {
		mm.put(fmt.Sprintf("sig%d", i), []*cn.Network{})
	}
	if got := mm.len(); got > 4 {
		t.Fatalf("memo grew to %d entries, cap 4", got)
	}
	// LRU: the most recent signatures survive.
	if _, ok := mm.get("sig31"); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := mm.get("sig0"); ok {
		t.Fatal("oldest entry survived past the cap")
	}
	// get refreshes recency: touch the LRU victim, insert, and it stays.
	mm.get("sig28")
	mm.put("fresh", nil)
	if _, ok := mm.get("sig28"); !ok {
		t.Fatal("touched entry was evicted before untouched ones")
	}
}

func TestNetMemoPerSystem(t *testing.T) {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	load := func() *System {
		s, err := LoadPrepared(&Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
			Options{Z: 8})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := load()
	if _, err := a.Networks([]string{"john", "vcr"}); err != nil {
		t.Fatal(err)
	}
	if a.netMemo.len() == 0 {
		t.Fatal("query did not populate the memo")
	}
	// A second system over the same schema starts with an empty memo:
	// nothing is shared through package state, so dropping a System
	// drops its memo.
	b := load()
	if got := b.memo().len(); got != 0 {
		t.Fatalf("fresh system memo has %d entries", got)
	}
	// Same-shape queries share one generation within a system.
	if _, err := a.Networks([]string{"mike", "vcr"}); err != nil {
		t.Fatal(err)
	}
	if got := a.netMemo.len(); got != 1 {
		t.Fatalf("same-shape queries made %d memo entries, want 1", got)
	}
}
