package webdemo_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/qserve"
	"repro/internal/webdemo"
)

func fig1(t *testing.T) *core.System {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
		core.Options{Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestHealthzOK(t *testing.T) {
	srv := httptest.NewServer(webdemo.NewServer(fig1(t)).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var body struct{ Status string }
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != string(qserve.HealthOK) {
		t.Fatalf("status %q, want ok", body.Status)
	}
}

// blockingEngine blocks every pipeline run until released, holding its
// qserve execution slot occupied.
type blockingEngine struct {
	release chan struct{}
}

func (b *blockingEngine) run(ctx context.Context) ([]exec.Result, error) {
	select {
	case <-b.release:
		return nil, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (b *blockingEngine) QueryContext(ctx context.Context, keywords []string, k int) ([]exec.Result, error) {
	return b.run(ctx)
}

func (b *blockingEngine) QueryAllStrategyContext(ctx context.Context, keywords []string, strat exec.Strategy) ([]exec.Result, error) {
	return b.run(ctx)
}

// TestOverloadedQueryCarriesRetryAfter saturates the single execution
// slot and asserts the 503 a shed query receives carries a positive
// whole-seconds Retry-After header.
func TestOverloadedQueryCarriesRetryAfter(t *testing.T) {
	sys := fig1(t)
	eng := &blockingEngine{release: make(chan struct{})}
	qs := qserve.New(eng, qserve.Options{
		MaxEntries:    -1,
		MaxConcurrent: 1,
		QueueWait:     time.Millisecond,
	})
	srv := httptest.NewServer(webdemo.NewServerWith(sys, qs).Handler())
	defer srv.Close()
	defer close(eng.release)

	occupied := make(chan struct{})
	go func() {
		defer close(occupied)
		resp, err := http.Get(srv.URL + "/api/query?q=occupier")
		if err == nil {
			resp.Body.Close()
		}
	}()
	for qs.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(srv.URL + "/api/query?q=shed+me")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds ≥ 1", ra)
	}
}

// TestHealthzUnavailable serves through an engine whose index backend
// has failed with no fallback and asserts /healthz turns 503 with
// Retry-After, and that a query gets a loud 503 instead of a silently
// empty 200.
func TestHealthzUnavailable(t *testing.T) {
	sys := fig1(t)
	eng := &unavailableEngine{}
	qs := qserve.New(eng, qserve.Options{MaxEntries: -1, Logf: func(string, ...any) {}})
	srv := httptest.NewServer(webdemo.NewServerWith(sys, qs).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("healthz 503 without Retry-After")
	}

	qresp, err := http.Get(srv.URL + "/api/query?q=anything")
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	if qresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query against unavailable index returned %d, want 503", qresp.StatusCode)
	}
}

// unavailableEngine answers every query with empty results — the shape
// of a soft-failed index — while reporting itself unavailable.
type unavailableEngine struct{}

func (u *unavailableEngine) QueryContext(ctx context.Context, keywords []string, k int) ([]exec.Result, error) {
	return nil, nil
}

func (u *unavailableEngine) QueryAllStrategyContext(ctx context.Context, keywords []string, strat exec.Strategy) ([]exec.Result, error) {
	return nil, nil
}

func (u *unavailableEngine) IndexHealthState() (core.IndexHealth, error) {
	return core.IndexUnavailable, context.DeadlineExceeded
}
