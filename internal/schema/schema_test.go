package schema

import (
	"testing"

	"repro/internal/xmlgraph"
)

// miniSchema builds a small TPC-H-like schema:
//
//	person(root) -> name(1), nation(1), order(*)
//	order -> lineitem(*)
//	lineitem -> line(choice,1)
//	line -ref-> part ; line -> product(1)
//	part(root) -> pname(1)
//	product -> descr(1)
func miniSchema(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.MustBuild(
		g.AddNode("person", All),
		g.AddNode("name", All),
		g.AddNode("nation", All),
		g.AddNode("order", All),
		g.AddNode("lineitem", All),
		g.AddNode("line", Choice),
		g.AddNode("part", All),
		g.AddTaggedNode("pname", "name", All),
		g.AddNode("product", All),
		g.AddNode("descr", All),
		g.SetRoot("person"),
		g.SetRoot("part"),
		g.AddEdge("person", "name", xmlgraph.Containment, 1),
		g.AddEdge("person", "nation", xmlgraph.Containment, 1),
		g.AddEdge("person", "order", xmlgraph.Containment, Unbounded),
		g.AddEdge("order", "lineitem", xmlgraph.Containment, Unbounded),
		g.AddEdge("lineitem", "line", xmlgraph.Containment, 1),
		g.AddEdge("line", "part", xmlgraph.Reference, 1),
		g.AddEdge("line", "product", xmlgraph.Containment, 1),
		g.AddEdge("part", "pname", xmlgraph.Containment, 1),
		g.AddEdge("product", "descr", xmlgraph.Containment, 1),
	)
	return g
}

func TestBuildValidation(t *testing.T) {
	g := New()
	if err := g.AddNode("", All); err == nil {
		t.Fatal("empty node name accepted")
	}
	if err := g.AddNode("a", All); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("a", All); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if err := g.AddEdge("a", "missing", xmlgraph.Containment, 1); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
	if err := g.AddEdge("missing", "a", xmlgraph.Containment, 1); err == nil {
		t.Fatal("edge from unknown node accepted")
	}
	if err := g.AddNode("b", All); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("a", "b", xmlgraph.Containment, 0); err == nil {
		t.Fatal("maxOccurs 0 accepted")
	}
	if err := g.AddEdge("a", "b", xmlgraph.Containment, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("a", "b", xmlgraph.Containment, 2); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if err := g.SetRoot("missing"); err == nil {
		t.Fatal("SetRoot on unknown node accepted")
	}
}

func TestNeighborsDeterministic(t *testing.T) {
	g := miniSchema(t)
	ns := g.Neighbors("lineitem")
	// lineitem: in from order, out to line.
	if len(ns) != 2 {
		t.Fatalf("neighbors = %+v", ns)
	}
	if ns[0].Node != "line" || !ns[0].Forward {
		t.Fatalf("first neighbor = %+v", ns[0])
	}
	if ns[1].Node != "order" || ns[1].Forward {
		t.Fatalf("second neighbor = %+v", ns[1])
	}
}

// buildConformingData builds a data graph that conforms to miniSchema.
func buildConformingData(t *testing.T) *xmlgraph.Graph {
	t.Helper()
	d := xmlgraph.New()
	p := d.AddNode("person", "")
	nm := d.AddNode("name", "John")
	na := d.AddNode("nation", "US")
	o := d.AddNode("order", "")
	l := d.AddNode("lineitem", "")
	ln := d.AddNode("line", "")
	pa := d.AddNode("part", "")
	pn := d.AddNode("name", "TV") // part's name: same tag, different schema node
	d.MustAddEdge(p, nm, xmlgraph.Containment)
	d.MustAddEdge(p, na, xmlgraph.Containment)
	d.MustAddEdge(p, o, xmlgraph.Containment)
	d.MustAddEdge(o, l, xmlgraph.Containment)
	d.MustAddEdge(l, ln, xmlgraph.Containment)
	d.MustAddEdge(ln, pa, xmlgraph.Reference)
	d.MustAddEdge(pa, pn, xmlgraph.Containment)
	return d
}

func TestAssignTypes(t *testing.T) {
	g := miniSchema(t)
	d := buildConformingData(t)
	if err := g.Assign(d); err != nil {
		t.Fatal(err)
	}
	// The part's <name> child must be typed pname, the person's name.
	var sawPname, sawName bool
	for _, id := range d.Nodes() {
		n := d.Node(id)
		if n.Label == "name" {
			switch n.Type {
			case "pname":
				sawPname = true
			case "name":
				sawName = true
			default:
				t.Fatalf("name node typed %q", n.Type)
			}
		}
	}
	if !sawPname || !sawName {
		t.Fatalf("context-dependent typing failed: pname=%v name=%v", sawPname, sawName)
	}
}

func TestAssignRejectsUnknownRoot(t *testing.T) {
	g := miniSchema(t)
	d := xmlgraph.New()
	d.AddNode("mystery", "")
	if err := g.Assign(d); err == nil {
		t.Fatal("unknown root accepted")
	}
}

func TestAssignRejectsBadChild(t *testing.T) {
	g := miniSchema(t)
	d := xmlgraph.New()
	p := d.AddNode("person", "")
	x := d.AddNode("descr", "oops") // person may not contain descr
	d.MustAddEdge(p, x, xmlgraph.Containment)
	if err := g.Assign(d); err == nil {
		t.Fatal("invalid child accepted")
	}
}

func TestAssignEnforcesMaxOccurs(t *testing.T) {
	g := miniSchema(t)
	d := xmlgraph.New()
	p := d.AddNode("person", "")
	n1 := d.AddNode("name", "a")
	n2 := d.AddNode("name", "b")
	d.MustAddEdge(p, n1, xmlgraph.Containment)
	d.MustAddEdge(p, n2, xmlgraph.Containment)
	if err := g.Assign(d); err == nil {
		t.Fatal("two name children accepted despite maxOccurs=1")
	}
}

func TestAssignEnforcesChoice(t *testing.T) {
	g := miniSchema(t)
	d := xmlgraph.New()
	l := d.AddNode("lineitem", "")
	// lineitem is not a root; hang it under a full chain.
	p := d.AddNode("person", "")
	o := d.AddNode("order", "")
	ln := d.AddNode("line", "")
	pr := d.AddNode("product", "")
	pa := d.AddNode("part", "")
	d.MustAddEdge(p, o, xmlgraph.Containment)
	d.MustAddEdge(o, l, xmlgraph.Containment)
	d.MustAddEdge(l, ln, xmlgraph.Containment)
	d.MustAddEdge(ln, pr, xmlgraph.Containment)
	d.MustAddEdge(ln, pa, xmlgraph.Reference) // second alternative: violates choice
	if err := g.Assign(d); err == nil {
		t.Fatal("choice node with two alternatives accepted")
	}
}

func TestAssignRejectsBadReference(t *testing.T) {
	g := miniSchema(t)
	d := buildConformingData(t)
	// Add a reference person -> part: no such schema edge.
	var p, pa xmlgraph.NodeID
	for _, id := range d.Nodes() {
		switch d.Node(id).Label {
		case "person":
			p = id
		case "part":
			pa = id
		}
	}
	d.MustAddEdge(p, pa, xmlgraph.Reference)
	if err := g.Assign(d); err == nil {
		t.Fatal("undeclared reference accepted")
	}
}

func TestAssignRejectsUnreachable(t *testing.T) {
	g := miniSchema(t)
	d := buildConformingData(t)
	// An orphan "name" element is a root but name is not root-capable.
	d.AddNode("name", "orphan")
	if err := g.Assign(d); err == nil {
		t.Fatal("orphan non-root element accepted")
	}
}

func TestConforms(t *testing.T) {
	g := miniSchema(t)
	if !g.Conforms(buildConformingData(t)) {
		t.Fatal("conforming graph rejected")
	}
}

func TestEdgesAndCounts(t *testing.T) {
	g := miniSchema(t)
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 9 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if len(g.Edges()) != 9 {
		t.Fatalf("Edges() = %d", len(g.Edges()))
	}
	if e, ok := g.FindEdge("line", "part", xmlgraph.Reference); !ok || e.MaxOccurs != 1 {
		t.Fatalf("FindEdge line->part = %+v, %v", e, ok)
	}
	if _, ok := g.FindEdge("line", "part", xmlgraph.Containment); ok {
		t.Fatal("FindEdge matched wrong kind")
	}
	if !g.IsChoice("line") || g.IsChoice("person") || g.IsChoice("missing") {
		t.Fatal("IsChoice wrong")
	}
}
