package atomicio_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/atomicio"
	"repro/internal/fault"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.bin")
	for _, content := range []string{"generation one", "generation two is longer"} {
		err := atomicio.WriteFile(path, func(f *os.File) error {
			_, err := f.WriteString(content)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("read %q, want %q", got, content)
		}
	}
}

// TestWriteFilePreservesOldGenerationOnCrash cuts the write at every
// prefix length and asserts the previous content is untouched and no
// temp debris survives under the target name.
func TestWriteFilePreservesOldGenerationOnCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	const old = "previous generation"
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	next := []byte("next generation, never committed")
	for cut := int64(0); cut <= int64(len(next)); cut += 7 {
		err := atomicio.WriteFile(path, func(f *os.File) error {
			_, err := fault.LimitWriter(f, cut).Write(next)
			return err
		})
		if !errors.Is(err, fault.ErrCrash) {
			t.Fatalf("cut %d: err = %v, want ErrCrash", cut, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != old {
			t.Fatalf("cut %d: target clobbered: %q", cut, got)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("aborted writes left debris: %v", entries)
	}
}

func TestSweepQuarantinesOrphanedTemps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.xkdb")
	if err := os.WriteFile(path, []byte("good"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Debris a crash mid-WriteFile would leave, plus files Sweep must
	// not touch: the target, an unrelated file, an already-torn file.
	orphan := filepath.Join(dir, "snap.xkdb.tmp-123456")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	unrelated := filepath.Join(dir, "other.bin")
	if err := os.WriteFile(unrelated, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "snap.xkdb.tmp-9.torn")
	if err := os.WriteFile(torn, []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}

	q, err := atomicio.Sweep(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || !strings.HasSuffix(q[0], atomicio.TornSuffix) {
		t.Fatalf("quarantined %v, want one .torn rename", q)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan temp still present under its original name")
	}
	for _, keep := range []string{path, unrelated, torn} {
		if _, err := os.Stat(keep); err != nil {
			t.Fatalf("sweep touched %s: %v", keep, err)
		}
	}
	// Idempotent: a second sweep finds nothing.
	q, err = atomicio.Sweep(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 0 {
		t.Fatalf("second sweep quarantined %v", q)
	}
}

func TestQuarantine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.xki")
	if err := os.WriteFile(path, []byte("bad crc"), 0o644); err != nil {
		t.Fatal(err)
	}
	to, err := atomicio.Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if to != path+atomicio.CorruptSuffix {
		t.Fatalf("quarantined to %q", to)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("original path still occupied")
	}
	if _, err := os.Stat(to); err != nil {
		t.Fatal(err)
	}
}
