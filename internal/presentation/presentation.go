// Package presentation implements XKeyword's interactive presentation
// graphs (paper §3.1): per candidate network, a graph of all target
// objects participating in its MTTONs, of which an active subgraph is
// displayed and grown/shrunk on demand by the user's expansion and
// contraction clicks, populated by minimal sets of focused queries
// against the connection relations (§6, Figure 13).
package presentation

import (
	"fmt"

	"repro/internal/cn"
	"repro/internal/decomp"
	"repro/internal/exec"
	"repro/internal/kwindex"
	"repro/internal/optimizer"
	"repro/internal/relstore"
	"repro/internal/tss"
)

// Session holds the execution machinery shared by the presentation
// graphs of one keyword query. Fragments selects which connection
// relations the on-demand queries may probe — the minimal / inlined /
// combination variants of Figure 16(b). Fallback, if non-nil, is used
// when Fragments cannot cover a focused query's subnetwork (e.g. the
// inlined set probing a single-edge region).
type Session struct {
	TSS       *tss.Graph
	Obj       *tss.ObjectGraph
	Store     *relstore.Store
	Index     kwindex.Source
	Stats     *tss.Stats
	Fragments []decomp.Fragment
	Fallback  []decomp.Fragment
	// Cache enables lookup memoization across the session's queries.
	Cache *exec.LookupCache
}

func (s *Session) executor() *exec.Executor {
	return &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index, Cache: s.Cache}
}

func (s *Session) optimizer(frags []decomp.Fragment, hint []bool) *optimizer.Optimizer {
	return &optimizer.Optimizer{
		TSS:            s.TSS,
		Store:          s.Store,
		Index:          s.Index,
		Stats:          s.Stats,
		Fragments:      frags,
		MaxJoins:       -1, // focused queries use whatever cover exists
		CostBased:      hint != nil,
		RestrictedHint: hint,
	}
}

// planSeeded plans a (sub)network seeded at occurrence seed, trying the
// session's probe set first and the fallback set second. hint marks the
// occurrences whose bindings the caller will restrict at run time, which
// drives the cost-based relation choice of §4.
func (s *Session) planSeeded(t *cn.TSSNetwork, seed int, hint []bool) (*optimizer.Plan, error) {
	p, err := s.optimizer(s.Fragments, hint).PlanSeeded(t, seed)
	if err != nil && s.Fallback != nil {
		return s.optimizer(s.Fallback, hint).PlanSeeded(t, seed)
	}
	return p, err
}

// planVariants returns the plan alternatives for a seeded subnetwork —
// the minimum-join cover and the edge-by-edge cover when the probe set
// offers both. Expand samples them and keeps the cheaper.
func (s *Session) planVariants(t *cn.TSSNetwork, seed int, hint []bool) ([]*optimizer.Plan, error) {
	ps, err := s.optimizer(s.Fragments, hint).PlanSeededVariants(t, seed)
	if err != nil && s.Fallback != nil {
		return s.optimizer(s.Fallback, hint).PlanSeededVariants(t, seed)
	}
	return ps, err
}

// Graph is the presentation graph of one candidate network. Active[i]
// is the set of displayed target objects for occurrence i; every
// displayed node belongs to at least one MTTON whose nodes are all
// displayed (§3.1 property (c)).
type Graph struct {
	Net      *cn.TSSNetwork
	Active   []map[int64]bool
	Expanded []bool
	sess     *Session
}

// Build creates the initial presentation graph PG0: a single, top-1
// MTTON of the network.
func (s *Session) Build(t *cn.TSSNetwork) (*Graph, error) {
	opt := s.optimizer(s.Fragments, nil)
	p, err := opt.Plan(t)
	if err != nil && s.Fallback != nil {
		p, err = s.optimizer(s.Fallback, nil).Plan(t)
	}
	if err != nil {
		return nil, err
	}
	ex := s.executor()
	r, found, err := ex.First(p, exec.Constraint{})
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("presentation: network %s has no results", t)
	}
	g := &Graph{
		Net:      t,
		Active:   make([]map[int64]bool, len(t.Occs)),
		Expanded: make([]bool, len(t.Occs)),
		sess:     s,
	}
	for i := range g.Active {
		g.Active[i] = map[int64]bool{r.Bind[i]: true}
	}
	return g, nil
}

// NumDisplayed returns the number of displayed nodes.
func (g *Graph) NumDisplayed() int {
	n := 0
	for _, set := range g.Active {
		n += len(set)
	}
	return n
}

// Displayed returns the displayed TOs of occurrence occ, sorted.
func (g *Graph) Displayed(occ int) []int64 {
	return exec.SortedSet(g.Active[occ])
}

// ExpandOptions tune Expand.
type ExpandOptions struct {
	// MaxNodes caps how many new nodes are displayed (the UI shows the
	// first 10 when more fit; 0 = unlimited).
	MaxNodes int
}

// subnet is the fresh region of radius d around an occurrence plus its
// displayed boundary, projected as a standalone network.
type subnet struct {
	net   *cn.TSSNetwork
	toSub map[int]int // original occ -> subnet occ
	occs  []int       // subnet occ -> original occ
	fresh map[int]bool
}

// subnetwork projects the occurrences within tree distance d of occ
// (fresh) together with their immediate displayed neighbors (boundary).
// Because the CTSSN is a tree and every displayed boundary node already
// lies on a displayed MTTON (property (c)), a binding of this subnetwork
// extends to a full MTTON of the network, so focused queries need only
// this region (§6's minimal set of focused queries).
func (g *Graph) subnetwork(occ, d int) subnet {
	dist := g.treeDistances(occ)
	include := make(map[int]bool)
	fresh := make(map[int]bool)
	for i, di := range dist {
		if di <= d {
			include[i] = true
			fresh[i] = true
		}
	}
	for _, e := range g.Net.Edges {
		if fresh[e.From] && !include[e.To] {
			include[e.To] = true
		}
		if fresh[e.To] && !include[e.From] {
			include[e.From] = true
		}
	}
	sn := subnet{net: &cn.TSSNetwork{CN: g.Net.CN}, toSub: make(map[int]int), fresh: fresh}
	for i := range g.Net.Occs {
		if !include[i] {
			continue
		}
		sn.toSub[i] = len(sn.net.Occs)
		sn.occs = append(sn.occs, i)
		o := g.Net.Occs[i]
		if !fresh[i] {
			// Boundary occurrences are restricted to displayed nodes,
			// which already satisfied their keyword constraints.
			o = cn.TSSOcc{Segment: o.Segment}
		}
		sn.net.Occs = append(sn.net.Occs, o)
	}
	for _, e := range g.Net.Edges {
		fi, fok := sn.toSub[e.From]
		ti, tok := sn.toSub[e.To]
		if fok && tok && (fresh[e.From] || fresh[e.To]) {
			sn.net.Edges = append(sn.net.Edges, cn.TSSEdgeRef{From: fi, To: ti, EdgeID: e.EdgeID})
		}
	}
	return sn
}

// Expand implements the on-demand expansion algorithm of Figure 13 on
// occurrence occ: every target object of that occurrence's type that
// connects to all keywords through the presentation graph — with as few
// fresh ("extra") edges as possible — is added together with its minimal
// connection. It returns the number of target objects added at occ.
func (g *Graph) Expand(occ int, opts ExpandOptions) (int, error) {
	if occ < 0 || occ >= len(g.Net.Occs) {
		return 0, fmt.Errorf("presentation: occurrence %d out of range", occ)
	}
	s := g.sess
	ex := s.executor()

	// Candidate set S: all target objects of the occurrence's segment,
	// narrowed by its keyword constraint if any.
	candidates := g.sess.Obj.BySegment(g.Net.Occs[occ].Segment)
	if kws := g.Net.Occs[occ].Keywords; len(kws) > 0 {
		var filtered []int64
		for _, to := range candidates {
			ok := true
			for _, ka := range kws {
				if !s.Index.TOSet(ka.Keyword, ka.SchemaNode)[to] {
					ok = false
					break
				}
			}
			if ok {
				filtered = append(filtered, to)
			}
		}
		candidates = filtered
	}

	dist := g.treeDistances(occ)
	maxDist := 0
	for _, di := range dist {
		if di > maxDist {
			maxDist = di
		}
	}
	// Pre-plan the focused queries per radius; all candidates share
	// them. Where the probe set offers both a min-join and an
	// edge-by-edge cover, both variants are kept and sampled: the first
	// candidates run each variant in turn, the rest use whichever
	// measured cheaper (adaptive relation choice, §4).
	type radiusPlan struct {
		sn       subnet
		variants []*optimizer.Plan
		cost     []float64
		uses     []int
	}
	plans := make([]radiusPlan, 0, maxDist+1)
	for d := 0; d <= maxDist; d++ {
		sn := g.subnetwork(occ, d)
		hint := make([]bool, len(sn.net.Occs))
		for si, orig := range sn.occs {
			hint[si] = !sn.fresh[orig]
		}
		ps, err := s.planVariants(sn.net, sn.toSub[occ], hint)
		if err != nil {
			return 0, fmt.Errorf("presentation: radius %d: %w", d, err)
		}
		plans = append(plans, radiusPlan{
			sn:       sn,
			variants: ps,
			cost:     make([]float64, len(ps)),
			uses:     make([]int, len(ps)),
		})
	}
	const sampleRuns = 4
	pickVariant := func(rp *radiusPlan) int {
		best, bestAvg := 0, -1.0
		for i := range rp.variants {
			if rp.uses[i] < sampleRuns {
				return i
			}
			if avg := rp.cost[i] / float64(rp.uses[i]); bestAvg < 0 || avg < bestAvg {
				best, bestAvg = i, avg
			}
		}
		return best
	}
	ioCost := func(before, after relstore.IOStats) float64 {
		rand := (after.PageReads - after.SeqReads) - (before.PageReads - before.SeqReads)
		seq := after.SeqReads - before.SeqReads
		looks := after.Lookups - before.Lookups
		return float64(rand) + float64(seq)/relstore.SeqFactor + 0.1*float64(looks)
	}

	added := 0
	newBind := make(map[int][]int64)
	for _, u := range candidates {
		if g.Active[occ][u] {
			continue // already displayed
		}
		if opts.MaxNodes > 0 && added >= opts.MaxNodes {
			break
		}
		found := false
		for d := 0; d <= maxDist && !found; d++ {
			rp := &plans[d]
			restrict := make([]map[int64]bool, len(rp.sn.net.Occs))
			for si, orig := range rp.sn.occs {
				if !rp.sn.fresh[orig] {
					restrict[si] = g.Active[orig]
				}
			}
			vi := pickVariant(rp)
			before := s.Store.Stats.Snapshot()
			r, ok, err := ex.First(rp.variants[vi], exec.Constraint{
				PreBind:  map[int]int64{rp.sn.toSub[occ]: u},
				Restrict: restrict,
			})
			rp.cost[vi] += ioCost(before, s.Store.Stats.Snapshot())
			rp.uses[vi]++
			if err != nil {
				return added, err
			}
			if !ok {
				continue
			}
			found = true
			added++
			for si, to := range r.Bind {
				newBind[rp.sn.occs[si]] = append(newBind[rp.sn.occs[si]], to)
			}
		}
	}
	for i, tos := range newBind {
		for _, to := range tos {
			g.Active[i][to] = true
		}
	}
	g.Expanded[occ] = true
	return added, nil
}

// Contract implements §3.1's contraction on occurrence occ: all its
// nodes except keep are hidden, along with the minimum number of other
// nodes needed so every displayed node still lies on a displayed MTTON.
func (g *Graph) Contract(occ int, keep int64) error {
	if occ < 0 || occ >= len(g.Net.Occs) {
		return fmt.Errorf("presentation: occurrence %d out of range", occ)
	}
	if !g.Active[occ][keep] {
		return fmt.Errorf("presentation: TO %d not displayed at occurrence %d", keep, occ)
	}
	s := g.sess
	hint := make([]bool, len(g.Net.Occs))
	for i := range hint {
		hint[i] = i != occ
	}
	plan, err := s.planSeeded(g.Net, occ, hint)
	if err != nil {
		return err
	}
	ex := s.executor()
	restrict := make([]map[int64]bool, len(g.Net.Occs))
	for i := range restrict {
		if i != occ {
			restrict[i] = g.Active[i]
		}
	}
	next := make([]map[int64]bool, len(g.Net.Occs))
	for i := range next {
		next[i] = make(map[int64]bool)
	}
	err = ex.EvaluateConstrained(plan, exec.Constraint{
		PreBind:  map[int]int64{occ: keep},
		Restrict: restrict,
	}, func(r exec.Result) bool {
		for i, to := range r.Bind {
			next[i][to] = true
		}
		return true
	})
	if err != nil {
		return err
	}
	if !next[occ][keep] {
		return fmt.Errorf("presentation: kept node %d lies on no displayed MTTON", keep)
	}
	g.Active = next
	g.Expanded[occ] = false
	return nil
}

// treeDistances returns, per occurrence, the tree distance from occ.
func (g *Graph) treeDistances(occ int) []int {
	dist := make([]int, len(g.Net.Occs))
	for i := range dist {
		dist[i] = -1
	}
	dist[occ] = 0
	queue := []int{occ}
	adj := make([][]int, len(g.Net.Occs))
	for _, e := range g.Net.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if dist[nb] < 0 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	for i, d := range dist {
		if d < 0 {
			dist[i] = 0
		}
	}
	return dist
}
