package xmlgraph

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// ParseOptions control how an XML document is turned into a graph.
type ParseOptions struct {
	// OmitRoot drops the document root element, making its children the
	// graph roots. Administrators do this when the root provides only an
	// artificial connection between unrelated first-level elements
	// (paper §3).
	OmitRoot bool
	// IDAttr names the attribute that carries an element's XML ID
	// (default "id"). Elements without it receive invented ids.
	IDAttr string
	// RefAttrs names attributes holding IDREFs; each one becomes a
	// reference edge from the owning element to the element whose ID
	// matches the attribute value (default {"idref", "ref"}).
	RefAttrs []string
	// AttrsAsChildren turns every remaining attribute into a contained
	// leaf node labeled with the attribute name.
	AttrsAsChildren bool
}

func (o *ParseOptions) defaults() {
	if o.IDAttr == "" {
		o.IDAttr = "id"
	}
	if o.RefAttrs == nil {
		o.RefAttrs = []string{"idref", "ref"}
	}
}

// Parse reads one XML document from r and builds the corresponding XML
// graph. Elements become nodes labeled with their tags; a leaf element's
// trimmed character data becomes its value; IDREF attributes become
// reference edges (resolved in a second pass so forward references work).
func Parse(r io.Reader, opts ParseOptions) (*Graph, error) {
	opts.defaults()
	g := New()
	dec := xml.NewDecoder(r)

	type frame struct {
		id     NodeID
		isRoot bool // the omitted document root sentinel
		text   strings.Builder
		kids   int
	}
	var stack []*frame
	byXMLID := make(map[string]NodeID)
	type pendingRef struct {
		from   NodeID
		target string
	}
	var refs []pendingRef
	depth := 0

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlgraph: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if opts.OmitRoot && depth == 1 {
				stack = append(stack, &frame{isRoot: true})
				continue
			}
			id := g.AddNode(t.Name.Local, "")
			if len(stack) > 0 && !stack[len(stack)-1].isRoot {
				parent := stack[len(stack)-1]
				if err := g.AddEdge(parent.id, id, Containment); err != nil {
					return nil, err
				}
				parent.kids++
			}
			for _, a := range t.Attr {
				name := a.Name.Local
				switch {
				case name == opts.IDAttr:
					if _, dup := byXMLID[a.Value]; dup {
						return nil, fmt.Errorf("xmlgraph: duplicate XML ID %q", a.Value)
					}
					byXMLID[a.Value] = id
				case containsFold(opts.RefAttrs, name):
					refs = append(refs, pendingRef{from: id, target: a.Value})
				case opts.AttrsAsChildren:
					kid := g.AddNode(name, a.Value)
					if err := g.AddEdge(id, kid, Containment); err != nil {
						return nil, err
					}
				}
			}
			stack = append(stack, &frame{id: id})
		case xml.EndElement:
			depth--
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlgraph: unbalanced end element %q", t.Name.Local)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if top.isRoot {
				continue
			}
			if top.kids == 0 {
				if v := strings.TrimSpace(top.text.String()); v != "" {
					g.Node(top.id).Value = v
				}
			}
		case xml.CharData:
			if len(stack) > 0 && !stack[len(stack)-1].isRoot {
				stack[len(stack)-1].text.Write(t)
			}
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlgraph: unexpected EOF with %d open elements", len(stack))
	}
	for _, pr := range refs {
		to, ok := byXMLID[pr.target]
		if !ok {
			return nil, fmt.Errorf("xmlgraph: unresolved IDREF %q", pr.target)
		}
		if err := g.AddEdge(pr.from, to, Reference); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ParseString is Parse over an in-memory document.
func ParseString(doc string, opts ParseOptions) (*Graph, error) {
	return Parse(strings.NewReader(doc), opts)
}

func containsFold(list []string, s string) bool {
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}
