// Command xkgen emits synthetic XML datasets matching the paper's two
// schemas: the TPC-H-like document of Figures 1/5 and a DBLP-like
// document matching Figure 14 (with synthetic citations). The output is
// a single XML document that cmd/xkeyword can load back.
//
// Usage:
//
//	xkgen -schema tpch|dblp [-seed N] [-scale N] [-o file]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/xmlexport"
)

func main() {
	var (
		schemaFlag = flag.String("schema", "dblp", "dataset schema: tpch or dblp")
		seed       = flag.Int64("seed", 1, "generator seed")
		scale      = flag.Int("scale", 1, "size multiplier over the default parameters")
		out        = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if *scale < 1 {
		fatal(fmt.Errorf("scale must be >= 1"))
	}

	var ds *datagen.Dataset
	var err error
	switch *schemaFlag {
	case "tpch":
		p := datagen.DefaultTPCHParams()
		p.Seed = *seed
		p.Persons *= *scale
		p.Parts *= *scale
		ds, err = datagen.TPCH(p)
	case "dblp":
		p := datagen.DefaultDBLPParams()
		p.Seed = *seed
		p.PapersPerYear *= *scale
		p.Authors *= *scale
		ds, err = datagen.DBLP(p)
	default:
		err = fmt.Errorf("unknown schema %q", *schemaFlag)
	}
	if err != nil {
		fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := xmlexport.Write(w, ds.Data, "db"); err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "xkgen: %d nodes, %d edges (%s, seed %d, scale %d)\n",
		ds.Data.NumNodes(), ds.Data.NumEdges(), *schemaFlag, *seed, *scale)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xkgen:", err)
	os.Exit(1)
}
