package pipeline

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
)

// Explain is the per-stage tree of one analyzed query: what EXPLAIN
// ANALYZE returns. It is JSON-shaped for the HTTP APIs and renders a
// fixed-width textual tree for the CLI.
type Explain struct {
	Keywords []string      `json:"keywords"`
	Mode     string        `json:"mode"`
	K        int           `json:"k,omitempty"`
	Networks int           `json:"networks"`
	Results  int           `json:"results"`
	Total    time.Duration `json:"total_ns"`
	Stages   []obs.Span    `json:"stages"`
}

// NewExplain assembles the report from a completed traced query.
func NewExplain(q *Query, tr *obs.Trace) *Explain {
	e := &Explain{
		Keywords: append([]string(nil), q.Keywords...),
		Mode:     q.Mode.String(),
		K:        q.K,
		Networks: len(q.Nets),
		Results:  len(q.Results),
		Total:    tr.Elapsed(),
		Stages:   tr.Spans(),
	}
	return e
}

// Format renders the textual EXPLAIN ANALYZE tree:
//
//	EXPLAIN ANALYZE keywords=[john vcr] mode=topk k=10
//	4 networks, 3 results, total 1.2ms
//	├─ discover  12µs   in=2  out=3
//	├─ generate  45µs   in=2  out=5   memo=miss
//	├─ reduce    8µs    in=5  out=4
//	├─ optimize  30µs   in=4  out=4
//	├─ execute   950µs  in=4  out=3   cache=12h/34m  (topk)
//	└─ rank      1µs    in=3  out=3
func (e *Explain) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "EXPLAIN ANALYZE keywords=[%s] mode=%s", strings.Join(e.Keywords, " "), e.Mode)
	if e.Mode == ModeTopK.String() {
		fmt.Fprintf(&sb, " k=%d", e.K)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%d networks, %d results, total %v\n", e.Networks, e.Results, e.Total.Round(time.Microsecond))
	for i, sp := range e.Stages {
		branch := "├─"
		if i == len(e.Stages)-1 {
			branch = "└─"
		}
		fmt.Fprintf(&sb, "%s %-9s %-8v in=%-5d out=%-5d", branch, sp.Stage,
			sp.Duration.Round(time.Microsecond), sp.In, sp.Out)
		if sp.Stage == StageGenerate {
			memo := "miss"
			if sp.Cached {
				memo = "hit"
			}
			fmt.Fprintf(&sb, " memo=%s", memo)
		} else if sp.CacheHits+sp.CacheMisses > 0 {
			fmt.Fprintf(&sb, " cache=%dh/%dm", sp.CacheHits, sp.CacheMisses)
		}
		if sp.Note != "" {
			fmt.Fprintf(&sb, " (%s)", sp.Note)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
