package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockguard checks the repo's `// guarded by <mu>` convention: a struct
// field carrying that annotation (doc or trailing comment; <mu> must be
// a sibling sync.Mutex/RWMutex field) may only be read or written after
// the owning value's mutex has been locked earlier in the same
// function, and every explicit Lock()/RLock() must be paired with an
// Unlock on all return paths (a later Unlock with no return in between,
// or a deferred one). The PR 1 per-System netMemo leak lived exactly in
// code where an unguarded map access raced its eviction path.
//
// The check is deliberately syntactic and local (source order within
// one function, receivers matched by expression text), with two escape
// hatches: functions whose name ends in "Locked" assert that the caller
// holds the lock, and constructors (New*/new*) may initialize fields
// before the value is shared.
var analyzerLockguard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated `// guarded by <mu>` need the lock held; Lock/Unlock must pair on all return paths",
	Run:  runLockguard,
}

func runLockguard(p *Pass) {
	guarded := collectGuardedFields(p)
	for _, ff := range p.Flow.Funcs {
		fd := ff.Decl
		if fd == nil {
			continue
		}
		checkLockPairing(p, fd)
		if len(guarded) > 0 {
			checkGuardedAccesses(p, fd, guarded)
		}
	}
}

// collectGuardedFields maps annotated field objects to the name of the
// sibling mutex that guards them, reporting malformed annotations.
func collectGuardedFields(p *Pass) map[*types.Var]string {
	out := make(map[*types.Var]string)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			names := make(map[string]bool)
			for _, f := range st.Fields.List {
				for _, nm := range f.Names {
					names[nm.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				mu := guardAnnotation(f)
				if mu == "" {
					continue
				}
				if !names[mu] {
					p.Reportf(f.Pos(), "`guarded by %s` names no sibling field of this struct", mu)
					continue
				}
				for _, nm := range f.Names {
					if obj, ok := p.Info.Defs[nm].(*types.Var); ok {
						out[obj] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts <mu> from a field's `guarded by <mu>` doc or
// trailing comment.
func guardAnnotation(f *ast.Field) string {
	for _, cg := range [2]*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		text := cg.Text()
		if i := strings.Index(text, "guarded by "); i >= 0 {
			rest := strings.Fields(text[i+len("guarded by "):])
			if len(rest) > 0 {
				return strings.TrimRight(rest[0], ".,;")
			}
		}
	}
	return ""
}

// lockEvent is one Lock/Unlock-family call in a function body, keyed by
// the printed receiver expression (e.g. "sh.mu").
type lockEvent struct {
	pos      token.Pos
	path     string // rendered mutex expression
	op       string // Lock, RLock, Unlock, RUnlock
	deferred bool
}

// lockOps is the method set we track on sync.Mutex / sync.RWMutex.
var lockOps = map[string]bool{"Lock": true, "RLock": true, "Unlock": true, "RUnlock": true}

// collectLockEvents gathers lock events and return positions of fd in
// source order.
func collectLockEvents(p *Pass, fd *ast.FuncDecl) (events []lockEvent, returns []token.Pos) {
	record := func(call *ast.CallExpr, deferred bool) bool {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !lockOps[sel.Sel.Name] {
			return false
		}
		if !isMutexType(p.TypeOf(sel.X)) {
			return false
		}
		events = append(events, lockEvent{
			pos:      call.Pos(),
			path:     types.ExprString(sel.X),
			op:       sel.Sel.Name,
			deferred: deferred,
		})
		return true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if record(st.Call, true) {
				return false
			}
		case *ast.CallExpr:
			record(st, false)
		case *ast.ReturnStmt:
			returns = append(returns, st.Pos())
		}
		return true
	})
	return events, returns
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := n.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// checkLockPairing verifies every non-deferred Lock/RLock has a
// matching Unlock on all return paths: either a deferred Unlock
// somewhere in the function, or a later source-order Unlock with no
// return statement in between.
func checkLockPairing(p *Pass, fd *ast.FuncDecl) {
	events, returns := collectLockEvents(p, fd)
	for _, l := range events {
		if l.deferred || (l.op != "Lock" && l.op != "RLock") {
			continue
		}
		unlockOp := "Unlock"
		if l.op == "RLock" {
			unlockOp = "RUnlock"
		}
		deferredUnlock := false
		var next token.Pos
		for _, u := range events {
			if u.op != unlockOp || u.path != l.path {
				continue
			}
			if u.deferred {
				deferredUnlock = true
				break
			}
			if u.pos > l.pos && (next == token.NoPos || u.pos < next) {
				next = u.pos
			}
		}
		if deferredUnlock {
			continue
		}
		if next == token.NoPos {
			p.Reportf(l.pos, "%s.%s() in %s has no matching %s; add defer %s.%s()", l.path, l.op, fd.Name.Name, unlockOp, l.path, unlockOp)
			continue
		}
		for _, r := range returns {
			if r > l.pos && r < next {
				p.Reportf(r, "return between %s.%s() and its %s in %s leaks the lock; use defer %s.%s()", l.path, l.op, unlockOp, fd.Name.Name, l.path, unlockOp)
				break
			}
		}
	}
}

// checkGuardedAccesses verifies every access to a guarded field is
// preceded (in source order within fd) by a Lock/RLock of the owning
// value's annotated mutex.
func checkGuardedAccesses(p *Pass, fd *ast.FuncDecl, guarded map[*types.Var]string) {
	name := fd.Name.Name
	if strings.HasSuffix(name, "Locked") || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") {
		return
	}
	events, _ := collectLockEvents(p, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := p.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		obj, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		mu, ok := guarded[obj]
		if !ok {
			return true
		}
		want := types.ExprString(sel.X) + "." + mu
		for _, e := range events {
			if (e.op == "Lock" || e.op == "RLock") && e.path == want && e.pos < sel.Pos() {
				return true
			}
		}
		p.Reportf(sel.Pos(), "%s is guarded by %s but %s does not lock %s first (lock it, name the func ...Locked, or annotate)", types.ExprString(sel), mu, name, want)
		return true
	})
}
