package core

import (
	"sort"

	"repro/internal/cn"
	"repro/internal/exec"
)

// RankWeighted re-ranks results under per-edge-kind weights (the §8
// future-work semantics): reference hops may cost more or less than
// containment hops. The sort is stable, so results of equally weighted
// networks keep their original (size-based) order. The input slice is
// not modified.
func RankWeighted(results []exec.Result, w cn.Weights) []exec.Result {
	out := append([]exec.Result(nil), results...)
	sort.SliceStable(out, func(i, j int) bool {
		wi := out[i].Net.WeightedScore(w)
		wj := out[j].Net.WeightedScore(w)
		if wi != wj {
			return wi < wj
		}
		return out[i].Score < out[j].Score
	})
	return out
}

// QueryWeighted answers a keyword query and ranks all results under the
// given weights instead of plain edge count.
func (s *System) QueryWeighted(keywords []string, k int, w cn.Weights) ([]exec.Result, error) {
	all, err := s.QueryAll(keywords)
	if err != nil {
		return nil, err
	}
	ranked := RankWeighted(all, w)
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked, nil
}
