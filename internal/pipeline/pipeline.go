// Package pipeline is the explicit staged form of XKeyword's query path
// (paper §4–§6): keyword discovery against the master index, candidate
// network generation (§4), CTSSN reduction (§5.1 of Figure 7's query
// stage), plan optimization (§5), execution (§6) and result ranking.
// Every Query* entry point of core.System is a thin configuration of
// one Run call, so each stage's duration, input/output cardinality and
// cache behaviour are measured in exactly one place: per query into an
// obs.Trace (EXPLAIN ANALYZE), and cumulatively into a Metrics sink
// (the /debug/pipeline endpoint).
package pipeline

import (
	"context"
	"time"

	"repro/internal/cn"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/rank"
)

// Mode selects how far a Run proceeds and how the execute stage
// evaluates the plans.
type Mode int

const (
	// ModeNetworks stops after CTSSN reduction (core.Networks).
	ModeNetworks Mode = iota
	// ModePlans stops after plan optimization (core.Plans).
	ModePlans
	// ModeTopK evaluates top-K smallest-first with the worker pool.
	ModeTopK
	// ModeAll evaluates every plan to completion.
	ModeAll
	// ModeStream starts the page-by-page evaluation and returns the
	// stream without waiting for results.
	ModeStream
)

// String names the mode for traces and EXPLAIN output.
func (m Mode) String() string {
	switch m {
	case ModeNetworks:
		return "networks"
	case ModePlans:
		return "plans"
	case ModeTopK:
		return "topk"
	case ModeAll:
		return "all"
	case ModeStream:
		return "stream"
	}
	return "unknown"
}

// Stage names in pipeline order. Indexes align with the stage sequence
// Run executes and with Metrics' per-stage slots.
const (
	StageDiscover = "discover"
	StageGenerate = "generate"
	StageReduce   = "reduce"
	StageOptimize = "optimize"
	StageExecute  = "execute"
	StageRank     = "rank"
)

// StageNames lists the stages in execution order.
var StageNames = [...]string{
	StageDiscover, StageGenerate, StageReduce, StageOptimize, StageExecute, StageRank,
}

// numStages is the pipeline depth.
const numStages = 6

// Query is one keyword query moving through the pipeline: the request
// fields configure a Run, the remaining fields are filled stage by
// stage and read by the caller afterwards.
type Query struct {
	// Keywords is the raw keyword list.
	Keywords []string
	// Mode selects the stage prefix and the execution shape.
	Mode Mode
	// K is the result bound for ModeTopK.
	K int
	// Strategy is the evaluation strategy for execute.
	Strategy exec.Strategy
	// Trace, when non-nil, collects one obs.Span per stage.
	Trace *obs.Trace
	// Scorer, when non-nil, overrides the pipeline's configured result
	// scorer for this query (see Config.Scorer).
	Scorer rank.Scorer

	// Norm holds the normalized keywords (set by discover). When the
	// query was relaxed, Keywords/Norm/NodeLists hold the effective
	// (kept) keywords; Relaxation records what changed.
	Norm []string
	// NodeLists holds, per keyword, the schema nodes whose extensions
	// contain it (set by discover).
	NodeLists [][]string
	// Sig is the keyword-shape signature keying the CN memo (set by
	// discover, length-prefixed so node names cannot collide shapes).
	Sig string
	// CNs are the candidate networks with this query's keywords
	// substituted in (set by generate).
	CNs []*cn.Network
	// Nets are the distinct candidate TSS networks in ascending score
	// order (set by reduce).
	Nets []*cn.TSSNetwork
	// Plans are the optimized execution plans, same order (set by
	// optimize).
	Plans []exec.Planned
	// Results is the final result list (set by execute and rank; empty
	// for ModeStream).
	Results []exec.Result
	// Stream is the started result stream (ModeStream only).
	Stream *exec.Stream
	// Relaxation records how discover rewrote a no-match query. Set only
	// when Config.Relax is on and at least one keyword had no match;
	// nil means the query ran exactly as asked.
	Relaxation *Relaxation

	// halt is set by a stage that has fully answered the query (e.g.
	// discover relaxing away every keyword); Run stops after it.
	halt bool
}

// StageReport is what a stage tells the driver about its work. The
// driver times the stage itself; the stage fills cardinality and cache
// traffic. A report is stack-allocated per stage, so reporting costs
// nothing when tracing is disabled.
type StageReport struct {
	In, Out     int64
	CacheHits   int64
	CacheMisses int64
	Cached      bool
	Note        string
}

// Stage is one step of the query pipeline.
type Stage interface {
	// Name returns the stage's fixed name (one of StageNames).
	Name() string
	// Run advances the query, filling rep with cardinality and cache
	// counts. Stages must be safe for concurrent use: one Pipeline
	// serves all of a System's queries.
	Run(ctx context.Context, q *Query, rep *StageReport) error
}

// Pipeline is the staged query path. Build one with New, or assemble
// custom stages directly for tests and ablations.
type Pipeline struct {
	Discover Stage
	Generate Stage
	Reduce   Stage
	Optimize Stage
	Execute  Stage
	Rank     Stage

	// Metrics, when non-nil, accumulates per-stage counters and latency
	// histograms across queries.
	Metrics *Metrics
}

// stagesFor returns the stage prefix a mode runs.
func (p *Pipeline) stagesFor(mode Mode) []Stage {
	stages := []Stage{p.Discover, p.Generate, p.Reduce}
	if mode == ModeNetworks {
		return stages
	}
	stages = append(stages, p.Optimize)
	if mode == ModePlans {
		return stages
	}
	stages = append(stages, p.Execute)
	if mode == ModeStream {
		// A stream's results are ranked page by page as they arrive;
		// there is no materialized result list to rank.
		return stages
	}
	return append(stages, p.Rank)
}

// Run drives the query through the stage prefix its mode selects,
// recording one span per stage into q.Trace (if enabled) and into
// p.Metrics (if set).
func (p *Pipeline) Run(ctx context.Context, q *Query) error {
	for i, st := range p.stagesFor(q.Mode) {
		var rep StageReport
		start := time.Now()
		err := st.Run(ctx, q, &rep)
		dur := time.Since(start)
		q.Trace.Add(obs.Span{
			Stage:       st.Name(),
			Start:       start,
			Duration:    dur,
			In:          rep.In,
			Out:         rep.Out,
			CacheHits:   rep.CacheHits,
			CacheMisses: rep.CacheMisses,
			Cached:      rep.Cached,
			Note:        rep.Note,
		})
		p.Metrics.observe(i, dur, &rep, err)
		if err != nil {
			return err
		}
		if q.halt {
			break
		}
	}
	p.Metrics.finish(q.Mode)
	return nil
}
