// The tpch example exercises the system over a synthetic TPC-H-like
// dataset (Figure 5 schema): it shows the candidate TSS networks of §4's
// "TV, VCR" example, the decomposition the Figure 12 algorithm chose,
// and the top results of several keyword queries — including a
// three-keyword query, which the engine supports although the paper's
// experiments fix two.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/decomp"
)

func main() {
	params := datagen.DefaultTPCHParams()
	ds, err := datagen.TPCH(params)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.LoadPrepared(&core.Prepared{
		Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj,
	}, core.Options{Z: 8})
	if err != nil {
		log.Fatal(err)
	}

	// The decomposition the load stage built (Figure 12's algorithm).
	rep := decomp.Report(sys.Store, sys.TSS, sys.Decomp)
	fmt.Printf("decomposition %q: %d fragments, %d rows, %d pages (M=%d, B=%d)\n",
		rep.Name, rep.Fragments, rep.TotalRows, rep.TotalPages, sys.M, sys.Opts.B)
	for _, f := range rep.PerFrag {
		fmt.Printf("  %-40s %-8s %6d rows\n", f.Fragment, f.Class, f.Rows)
	}

	// §4's example: the candidate TSS networks of "TV, VCR".
	nets, err := sys.Networks([]string{"TV", "VCR"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncandidate TSS networks for \"TV, VCR\" (Z=8): %d\n", len(nets))
	for i, tn := range nets {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", len(nets)-i)
			break
		}
		fmt.Printf("  CTSSN%-2d size %d score %d: %s\n", i+1, tn.Size(), tn.Score(), tn)
	}

	// Queries.
	for _, q := range [][]string{
		{"TV", "VCR"},
		{"John", "Radio"},
		{"Anna", "US", "Speaker"}, // three keywords
	} {
		fmt.Printf("\nquery %v — top 3:\n", q)
		results, err := sys.Query(q, 3)
		if err != nil {
			log.Fatal(err)
		}
		if len(results) == 0 {
			fmt.Println("  (no results)")
			continue
		}
		for i, r := range results {
			fmt.Printf("\n  #%d score %d\n", i+1, r.Score)
			fmt.Println(indent(sys.RenderResult(r), "  "))
		}
	}
}

func indent(s, pad string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += pad + line + "\n"
	}
	return out[:len(out)-1]
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return append(lines, s[start:])
}
