package qserve

import (
	"context"
	"sync"

	"repro/internal/exec"
)

// flightGroup collapses concurrent calls with the same key into one
// execution (the classic singleflight, reimplemented here because the
// repo is stdlib-only), with one addition the serving layer needs: the
// shared execution runs on its own context that is cancelled when the
// last interested caller goes away, so a flight every client abandoned
// stops burning CPU mid-join, while one disconnecting client never
// fails the others.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight // guarded by mu
}

type flight struct {
	done      chan struct{} // closed when val/err are settled
	val       []exec.Result
	ann       *Annotations // answer annotations shared by all collapsed waiters
	err       error
	waiters   int
	abandoned bool // every waiter left; the flight is being cancelled
	cancel    context.CancelFunc
}

// do runs fn once per key across concurrent callers. The bool return
// is true when this caller joined an existing flight (a collapse).
// Callers whose ctx ends first detach with ctx's error; fn keeps
// running for the remaining waiters. Annotations reported by fn are
// shared with every waiter — a collapsed query served from a
// partially-failed backend (or relaxed to be answerable) is just as
// degraded/relaxed for the joiners.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) ([]exec.Result, *Annotations, error)) ([]exec.Result, *Annotations, bool, error) {
	for {
		g.mu.Lock()
		if g.m == nil {
			g.m = make(map[string]*flight)
		}
		if f, ok := g.m[key]; ok {
			if f.abandoned {
				// The flight is dying of cancellation; don't inherit its
				// error — wait it out and start a fresh one.
				g.mu.Unlock()
				select {
				case <-f.done:
					continue
				case <-ctx.Done():
					return nil, nil, false, ctx.Err()
				}
			}
			f.waiters++
			g.mu.Unlock()
			return g.wait(ctx, f, true)
		}
		//xk:ignore ctxflow the shared flight must outlive any single caller's ctx; it is cancelled separately when the last waiter leaves
		fctx, cancel := context.WithCancel(context.Background())
		f := &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
		g.m[key] = f
		g.mu.Unlock()
		go func() {
			val, ann, err := fn(fctx)
			g.mu.Lock()
			f.val, f.ann, f.err = val, ann, err
			delete(g.m, key)
			g.mu.Unlock()
			close(f.done)
			cancel()
		}()
		return g.wait(ctx, f, false)
	}
}

// wait blocks until the flight settles or the caller's ctx ends; in the
// latter case it drops the caller's interest and cancels the flight if
// no one is left waiting.
func (g *flightGroup) wait(ctx context.Context, f *flight, joined bool) ([]exec.Result, *Annotations, bool, error) {
	select {
	case <-f.done:
		return f.val, f.ann, joined, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		if last {
			f.abandoned = true
		}
		g.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, nil, joined, ctx.Err()
	}
}
