package kwindex

import "sync"

// FallibleSource is a Source whose lookups can fail softly: lookup
// methods return empty results and the first underlying failure is
// reported by Err. *diskindex.Reader is the canonical implementation.
type FallibleSource interface {
	Source
	Err() error
}

// Failover serves lookups from a fallible primary (the disk-backed
// reader) until the primary reports a failure, then degrades: it invokes
// the rebuild callback once to construct a replacement source (an
// in-memory index rebuilt from the snapshot) and serves every subsequent
// lookup — including a retry of the one that exposed the failure — from
// it. The failed lookup is retried rather than returned, upholding the
// robustness invariant: fail loudly or answer correctly, never return
// silently empty results for a query the fallback can answer.
//
// If rebuilding fails too, the Failover keeps returning the primary's
// empty results and surfaces both errors, so the serving layer's health
// probe reports unavailable instead of letting wrong answers flow.
type Failover struct {
	primary FallibleSource

	// rebuild constructs the fallback source on first primary failure.
	rebuild func() (Source, error)
	// onDegrade, if set, is notified exactly once with the primary error
	// that triggered degradation (logging, metrics).
	onDegrade func(error)

	mu         sync.Mutex
	degraded   bool   // guarded by mu
	fallback   Source // guarded by mu; nil until rebuilt
	rebuildErr error  // guarded by mu
}

// NewFailover wraps primary with lazy degraded-mode failover. rebuild
// may be nil, in which case degradation only marks the index unhealthy
// without self-healing. onDegrade may be nil.
func NewFailover(primary FallibleSource, rebuild func() (Source, error), onDegrade func(error)) *Failover {
	return &Failover{primary: primary, rebuild: rebuild, onDegrade: onDegrade}
}

// acquire returns the source to serve the next lookup from, and whether
// it is the (still-trusted) primary.
func (f *Failover) acquire() (Source, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.degraded && f.fallback != nil {
		return f.fallback, false
	}
	return f.primary, true
}

// checkpoint inspects the primary after a lookup served from it. On a
// failure it degrades (once) and reports whether a fallback is available
// so the caller can retry the lookup.
func (f *Failover) checkpoint() bool {
	err := f.primary.Err()
	if err == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.degraded {
		f.degraded = true
		if f.onDegrade != nil {
			f.onDegrade(err)
		}
		if f.rebuild != nil {
			fb, rerr := f.rebuild()
			if rerr != nil {
				f.rebuildErr = rerr
			} else {
				f.fallback = fb
			}
		}
	}
	return f.fallback != nil
}

// ContainingList implements Source.
func (f *Failover) ContainingList(k string) []Posting {
	src, primary := f.acquire()
	ps := src.ContainingList(k)
	if primary && f.checkpoint() {
		src, _ = f.acquire()
		ps = src.ContainingList(k)
	}
	return ps
}

// SchemaNodes implements Source.
func (f *Failover) SchemaNodes(k string) []string {
	src, primary := f.acquire()
	ns := src.SchemaNodes(k)
	if primary && f.checkpoint() {
		src, _ = f.acquire()
		ns = src.SchemaNodes(k)
	}
	return ns
}

// TOSet implements Source.
func (f *Failover) TOSet(k, schemaNode string) map[int64]bool {
	src, primary := f.acquire()
	set := src.TOSet(k, schemaNode)
	if primary && f.checkpoint() {
		src, _ = f.acquire()
		set = src.TOSet(k, schemaNode)
	}
	return set
}

// NumPostings implements Source. Counts come from the header or the
// rebuilt index and cannot fail mid-lookup, so no checkpoint is needed.
func (f *Failover) NumPostings() int {
	src, _ := f.acquire()
	return src.NumPostings()
}

// NumKeywords implements Source.
func (f *Failover) NumKeywords() int {
	src, _ := f.acquire()
	return src.NumKeywords()
}

// Primary returns the wrapped primary source (for stats and forensics —
// it keeps reporting its first error after degradation).
func (f *Failover) Primary() FallibleSource { return f.primary }

// Degraded reports whether the primary has failed and lookups moved (or
// tried to move) to the fallback.
func (f *Failover) Degraded() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.degraded
}

// Healed reports whether a rebuilt fallback source is serving lookups.
func (f *Failover) Healed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fallback != nil
}

// Err returns the primary's first failure, if any.
func (f *Failover) Err() error { return f.primary.Err() }

// RebuildErr returns the error from a failed self-heal attempt; non-nil
// means the index is unavailable, not merely degraded.
func (f *Failover) RebuildErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rebuildErr
}

var _ Source = (*Failover)(nil)
var _ FallibleSource = (*Failover)(nil)
