package kwindex_test

import (
	"testing"

	"repro/internal/kwindex"
)

// BenchmarkTokenize is the baseline for the tokenizer's allocation diet:
// lowercase ASCII inputs should tokenize with one slice allocation (the
// token headers), mixed-case and unicode inputs with one extra string
// per transformed token.
func BenchmarkTokenize(b *testing.B) {
	cases := []struct{ name, in string }{
		{"lower", "keyword proximity search on xml graphs"},
		{"mixed", "Keyword Proximity Search on XML Graphs (ICDE 2003)"},
		{"ids", "TPC-H 2001 part-42 pname"},
		{"unicode", "ÜberGraph Ηράκλειτος naïve"},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var sink int
			for i := 0; i < b.N; i++ {
				sink += len(kwindex.Tokenize(c.in))
			}
			_ = sink
		})
	}
}
