package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// keyfields checks cache-key and digest builders for dropped fields: a
// function whose name says it builds a key (cacheKey, requestDigest,
// Key, Fingerprint...) from a request/params struct must fold every
// field of that struct into the key, or two requests differing only in
// the dropped field silently share a cache entry. PR 8 hit exactly
// this: the result cache keyed on the normalized keyword bag alone,
// and adding per-query scorer and relaxation options meant a weighted
// query could be answered from a canonical entry until the key was
// extended by hand.
//
// The check is inter-procedural over the module call graph: passing
// the struct (or its address) to another function delegates to that
// function's field-read set, computed transitively and memoized.
// Passing the struct to a function outside the module (fmt.Sprintf
// with %+v, json.Marshal, binary.Write) is assumed to consume every
// field. Fields that are deliberately not part of the key belong on a
// separate struct — or suppress with //xk:ignore keyfields <reason>
// stating why collisions are safe.
var analyzerKeyfields = &Analyzer{
	Name: "keyfields",
	Doc:  "key/digest builders must fold every field of their request struct into the key",
	Run:  runKeyfields,
}

func runKeyfields(p *Pass) {
	for _, ff := range p.Flow.Funcs {
		fd := ff.Decl
		if fd == nil || !keyBuilderName(fd.Name.Name) {
			continue
		}
		fn, ok := p.Info.Defs[fd.Name].(*types.Func)
		if !ok || !keyBuilderResult(fn) {
			continue
		}
		sig := fn.Type().(*types.Signature)
		// Parameter positions, plus -1 for the receiver of a method
		// builder (func (r Request) Key() uint64).
		positions := []int{}
		if sig.Recv() != nil {
			positions = append(positions, -1)
		}
		for i := 0; i < sig.Params().Len(); i++ {
			positions = append(positions, i)
		}
		for _, i := range positions {
			param := paramAt(sig, i)
			if param == nil {
				continue
			}
			st, named := keyStruct(param.Type())
			if st == nil {
				continue
			}
			memo := make(map[memoKey]map[string]bool)
			used := fieldsRead(p.Graph, fn, i, st, memo, nil)
			if used == nil {
				continue // escaped to an unknown consumer: assume complete
			}
			for f := 0; f < st.NumFields(); f++ {
				field := st.Field(f)
				if used[field.Name()] {
					continue
				}
				p.Reportf(fd.Name.Pos(), "%s builds a key from %s but never reads field %s; requests differing only in %s would collide — fold it into the key", fd.Name.Name, named, field.Name(), field.Name())
			}
		}
	}
}

// keyBuilderName matches the naming conventions of key/digest builders.
func keyBuilderName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "key") || strings.Contains(l, "digest") || strings.Contains(l, "fingerprint")
}

// keyBuilderResult requires a key-shaped result: string, integer, or
// byte slice/array.
func keyBuilderResult(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	t := sig.Results().At(0).Type().Underlying()
	switch t := t.(type) {
	case *types.Basic:
		return t.Info()&(types.IsString|types.IsInteger) != 0
	case *types.Slice:
		b, ok := t.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	case *types.Array:
		b, ok := t.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	return false
}

// keyStruct accepts request/params-shaped named struct types (by name
// suffix), directly or behind one pointer.
func keyStruct(t types.Type) (*types.Struct, string) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	name := n.Obj().Name()
	l := strings.ToLower(name)
	shaped := strings.HasSuffix(l, "request") || strings.HasSuffix(l, "params") ||
		strings.HasSuffix(l, "options") || strings.HasSuffix(l, "opts") || strings.HasSuffix(l, "query")
	if !shaped {
		return nil, ""
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return nil, ""
	}
	return st, name
}

type memoKey struct {
	fn    *types.Func
	param int // parameter index, or -1 for the receiver
}

// paramAt returns the parameter at index i, with -1 meaning the
// receiver.
func paramAt(sig *types.Signature, i int) *types.Var {
	if i == -1 {
		return sig.Recv()
	}
	if i < sig.Params().Len() {
		return sig.Params().At(i)
	}
	return nil
}

// fieldsRead computes the set of field names of st that fn reads from
// its param-th parameter, following static calls through the module
// graph. A nil return means "assume every field" — the struct escaped
// somewhere we cannot see into. Cycles contribute nothing on the
// back edge (the fixpoint of "reads nothing more" is sound here: any
// genuine read elsewhere in the cycle is still counted).
func fieldsRead(g *CallGraph, fn *types.Func, param int, st *types.Struct, memo map[memoKey]map[string]bool, stack []memoKey) map[string]bool {
	key := memoKey{fn, param}
	if got, ok := memo[key]; ok {
		return got
	}
	for _, s := range stack {
		if s == key {
			return map[string]bool{} // back edge: no additional reads
		}
	}
	node := g.FuncOf(fn)
	if node == nil {
		return nil // outside the module: assume it consumes everything
	}
	fd := node.Decl
	sig := fn.Type().(*types.Signature)
	paramVar := paramAt(sig, param)
	if paramVar == nil {
		return nil
	}

	// Resolve the parameter object to its declaring idents, then track
	// aliases (q := p, ptr := &p) by object identity within the body.
	aliases := map[types.Object]bool{paramVar: true}
	// One pass to pick up direct aliases; a second pass would catch
	// alias-of-alias chains, which do not appear in key builders.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			rhs := ast.Unparen(as.Rhs[i])
			if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op.String() == "&" {
				rhs = ast.Unparen(ue.X)
			}
			rid, ok := rhs.(*ast.Ident)
			if !ok || !aliases[node.Info.Uses[rid]] {
				continue
			}
			if lid, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := node.Info.Defs[lid]; obj != nil {
					aliases[obj] = true
				}
			}
		}
		return true
	})

	isAlias := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op.String() == "&" {
			e = ast.Unparen(ue.X)
		}
		id, ok := e.(*ast.Ident)
		return ok && aliases[node.Info.Uses[id]]
	}

	used := make(map[string]bool)
	complete := false // set when the struct escapes to an all-fields consumer
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if complete {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isAlias(n.X) {
				if sel := node.Info.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
					used[sel.Obj().Name()] = true
				}
			}
		case *ast.CallExpr:
			// Method call on the struct itself: r.normalize() delegates
			// to the method's receiver reads.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && isAlias(sel.X) {
				if callee := staticCallee(node.Info, n); callee != nil {
					if sub := fieldsRead(g, callee, -1, st, memo, append(stack, key)); sub != nil {
						for f := range sub {
							used[f] = true
						}
					} else {
						complete = true
						return false
					}
				}
			}
			for argIdx, arg := range n.Args {
				if !isAlias(arg) {
					continue
				}
				callee := staticCallee(node.Info, n)
				if callee == nil {
					complete = true // function value: cannot see inside
					return false
				}
				sub := fieldsRead(g, callee, argIdx, st, memo, append(stack, key))
				if sub == nil {
					complete = true
					return false
				}
				for f := range sub {
					used[f] = true
				}
			}
		}
		return true
	})
	if complete {
		memo[key] = nil
		return nil
	}
	memo[key] = used
	return used
}
