// Package rank makes the pipeline's rank stage pluggable: a Scorer
// reorders (and truncates) the materialized result list of a keyword
// query. The paper ranks purely by MTNN edge count (§3.1) and names
// richer semantics as future work (§8); the weighted and diversified
// scorers implement the two directions the related graph-keyword-search
// literature takes it (content/TF-IDF-weighted costs per Kargar et al.,
// diversified top-k).
//
// Scorer contract. Every scorer receives the result list in the
// canonical (Score, Ord) total order — the order exec/topk, the qserve
// cache and the shard coordinator's MergeTopK all agree on — and must
// be a deterministic function of (that order, the Context): no
// randomness, no wall clock, no iteration over Go maps into the output
// order. Ties MUST be broken by the canonical order, so a scorer's
// output is byte-identical across replicas and across the single-node
// and scatter-gather paths. The default edge-count scorer returns the
// canonical order unchanged; the engine detects it with IsDefault and
// keeps the early-terminating top-k path, which is only sound for the
// canonical order.
package rank

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cn"
	"repro/internal/exec"
	"repro/internal/kwindex"
	"repro/internal/tss"
)

// Context is what a scorer may consult besides the results themselves.
// On the scatter-gather path Index is the query-scoped source (the
// merged global postings of the query's own keywords), so scorers must
// only look up keywords that occur in the results' networks — which by
// construction are the query's keywords.
type Context struct {
	TSS      *tss.Graph
	Index    kwindex.Source
	Keywords []string // normalized query keywords
}

// Scorer reorders a canonically-ordered result list and truncates it to
// k (k <= 0 keeps all). See the package comment for the determinism
// contract.
type Scorer interface {
	// Name returns the registry name ("edgecount", "weighted", ...).
	Name() string
	// Rank returns the re-ranked, truncated list. It may reorder rs in
	// place and must not retain it.
	Rank(rc Context, rs []exec.Result, k int) []exec.Result
}

// DefaultName names the scorer that reproduces the paper's ranking.
const DefaultName = "edgecount"

// Names lists the shipped scorers, default first.
func Names() []string { return []string{DefaultName, "weighted", "diversified"} }

// New resolves a scorer by name; "" selects the default. Unknown names
// error loudly — a typoed -scorer flag must not silently rank by edge
// count.
func New(name string) (Scorer, error) {
	switch name {
	case "", DefaultName:
		return EdgeCount{}, nil
	case "weighted":
		return Weighted{}, nil
	case "diversified":
		return Diversified{}, nil
	}
	return nil, fmt.Errorf("rank: unknown scorer %q (have %v)", name, Names())
}

// Valid reports whether name resolves ("" counts: it is the default).
func Valid(name string) bool {
	_, err := New(name)
	return err == nil
}

// IsDefault reports whether s ranks by the canonical order itself — the
// engine then keeps the early-terminating top-k execution path, which
// is byte-identical to the pre-scorer behavior.
func IsDefault(s Scorer) bool {
	if s == nil {
		return true
	}
	_, ok := s.(EdgeCount)
	return ok
}

// truncate caps rs at k when k > 0.
func truncate(rs []exec.Result, k int) []exec.Result {
	if k > 0 && len(rs) > k {
		return rs[:k]
	}
	return rs
}

// canonicalize sorts rs into the canonical (Score, Ord) order. Scorers
// receive the list canonically ordered from the pipeline, but direct
// callers (tests, tools) may not keep that invariant.
func canonicalize(rs []exec.Result) {
	sort.Slice(rs, func(i, j int) bool { return exec.OrdLess(rs[i], rs[j]) })
}

// EdgeCount is the paper's ranking — the MTNN edge count carried in
// Result.Score, tie-broken by the canonical enumeration order. It is
// the identity on a canonically-ordered list, which is exactly why it
// is the default: the engine proves refactor equivalence against it.
type EdgeCount struct{}

// Name implements Scorer.
func (EdgeCount) Name() string { return DefaultName }

// Rank implements Scorer: canonical order, truncated.
func (EdgeCount) Rank(rc Context, rs []exec.Result, k int) []exec.Result {
	canonicalize(rs)
	return truncate(rs, k)
}

// Weighted ranks by content-weighted network cost, after Kargar et al.:
// reference edges (IDREF jumps across the document) cost more than
// containment edges, and every keyword occurrence contributes a node
// cost that shrinks with the keyword's rarity at that schema node (an
// IDF weight — a tree reaching "Codd" through the rare aname extension
// beats one reaching "database" through ubiquitous titles). Lower cost
// ranks first; exact cost ties fall back to the canonical order.
type Weighted struct{}

// Weighted scorer constants. Reference hops cost double (they leave the
// document tree); alpha blends the node costs against the edge costs.
const (
	weightedContainment = 1.0
	weightedReference   = 2.0
	weightedAlpha       = 0.5
)

// Name implements Scorer.
func (Weighted) Name() string { return "weighted" }

// Rank implements Scorer.
func (Weighted) Rank(rc Context, rs []exec.Result, k int) []exec.Result {
	canonicalize(rs)
	w := cn.Weights{Containment: weightedContainment, Reference: weightedReference}
	// Document-frequency lookups are memoized per (keyword, schema
	// node): every result of one network shares them.
	type dfKey struct{ kw, sn string }
	dfMemo := make(map[dfKey]int)
	df := func(kw, sn string) int {
		key := dfKey{kw, sn}
		if v, ok := dfMemo[key]; ok {
			return v
		}
		v := 0
		if rc.Index != nil {
			v = len(rc.Index.TOSet(kw, sn))
		}
		dfMemo[key] = v
		return v
	}
	total := 0.0
	if rc.Index != nil {
		total = float64(rc.Index.NumPostings())
	}
	costs := make([]float64, len(rs))
	for i, r := range rs {
		c := r.Net.WeightedScore(w)
		for _, occ := range r.Net.Occs {
			for _, ka := range occ.Keywords {
				// IDF-style rarity: a keyword held by few target objects
				// of this schema node is cheap to reach (more specific),
				// a ubiquitous one is expensive. 1/(1+log2(1+N/(1+df)))
				// is in (0, 1], monotonically increasing in df.
				rarity := math.Log2(1 + total/float64(1+df(ka.Keyword, ka.SchemaNode)))
				c += weightedAlpha / (1 + rarity)
			}
		}
		costs[i] = c
	}
	// Sort an index permutation so the comparator reads stable cost
	// slots; stability over the canonical input order is the tie-break.
	idx := make([]int, len(rs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return costs[idx[a]] < costs[idx[b]] })
	out := make([]exec.Result, len(rs))
	for i, j := range idx {
		out[i] = rs[j]
	}
	return truncate(out, k)
}

// Diversified is greedy diversified top-k: each step picks the
// canonically-best remaining result after penalizing target objects
// already shown, so the top of the list covers distinct regions of the
// data instead of k permutations of one hub object. Ties (equal
// penalized score) fall back to the canonical order, keeping the output
// deterministic.
type Diversified struct{}

// diversifyPenalty is the score penalty per already-displayed target
// object a candidate rebinds. Score is an edge count (small integers),
// so 2 per repeated TO is a strong push toward novelty without ever
// promoting a result that shares nothing but is many edges larger.
const diversifyPenalty = 2.0

// Name implements Scorer.
func (Diversified) Name() string { return "diversified" }

// Rank implements Scorer.
func (Diversified) Rank(rc Context, rs []exec.Result, k int) []exec.Result {
	canonicalize(rs)
	n := len(rs)
	limit := n
	if k > 0 && k < n {
		limit = k
	}
	if n == 0 {
		return rs
	}
	seen := make(map[int64]int, n) // TO id -> times displayed
	used := make([]bool, n)
	out := make([]exec.Result, 0, limit)
	for len(out) < limit {
		best, bestEff := -1, 0.0
		for i, r := range rs {
			if used[i] {
				continue
			}
			overlap := 0
			for _, to := range r.Bind {
				overlap += seen[to]
			}
			eff := float64(r.Score) + diversifyPenalty*float64(overlap)
			// Candidates are scanned in canonical order, so strict < keeps
			// the canonical-first tie-break.
			if best < 0 || eff < bestEff {
				best, bestEff = i, eff
			}
		}
		used[best] = true
		out = append(out, rs[best])
		for _, to := range rs[best].Bind {
			seen[to]++
		}
	}
	return out
}
