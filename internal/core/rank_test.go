package core_test

import (
	"testing"

	"repro/internal/cn"
	"repro/internal/core"
	"repro/internal/xmlgraph"
)

func TestWeightedSize(t *testing.T) {
	net := &cn.Network{
		Occs: []cn.Occ{{Schema: "a"}, {Schema: "b"}, {Schema: "c"}},
		Edges: []cn.Edge{
			{From: 0, To: 1, Kind: xmlgraph.Containment},
			{From: 1, To: 2, Kind: xmlgraph.Reference},
		},
	}
	if got := net.WeightedSize(cn.UnitWeights()); got != 2 {
		t.Fatalf("unit weighted size = %v", got)
	}
	if got := net.WeightedSize(cn.Weights{Containment: 1, Reference: 3}); got != 4 {
		t.Fatalf("weighted size = %v", got)
	}
	tn := &cn.TSSNetwork{CN: net}
	if got := tn.WeightedScore(cn.Weights{Containment: 0.5, Reference: 2}); got != 2.5 {
		t.Fatalf("CTSSN weighted score = %v", got)
	}
	// Without a CN the TSS edge count is the fallback.
	bare := &cn.TSSNetwork{Occs: []cn.TSSOcc{{Segment: "x"}, {Segment: "y"}}, Edges: []cn.TSSEdgeRef{{From: 0, To: 1}}}
	if got := bare.WeightedScore(cn.UnitWeights()); got != 1 {
		t.Fatalf("fallback score = %v", got)
	}
}

// With unit weights, weighted ranking must agree with the paper's
// edge-count ranking.
func TestRankWeightedUnitMatchesDefault(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8})
	all, err := s.QueryAll([]string{"john", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	ranked := core.RankWeighted(all, cn.UnitWeights())
	for i := range all {
		if ranked[i].Score != all[i].Score {
			t.Fatalf("unit ranking reordered scores at %d: %d vs %d", i, ranked[i].Score, all[i].Score)
		}
	}
}

// Penalizing reference edges demotes results that hop through IDREFs.
func TestRankWeightedPenalizesReferences(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8})
	// "us, dvd": connects either through the service_call reference
	// (DVD error, issued by Mike) or via containment-heavy paths through
	// products.
	all, err := s.QueryAll([]string{"us", "dvd"})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Skip("not enough results to compare")
	}
	w := cn.Weights{Containment: 1, Reference: 10}
	heavyRef := core.RankWeighted(all, w)
	// The top result must have the minimum weighted cost over all
	// results: nothing cheaper was ranked below it.
	w0 := heavyRef[0].Net.WeightedScore(w)
	for _, r := range all {
		if wr := r.Net.WeightedScore(w); wr < w0 {
			t.Fatalf("result with weight %v ranked below top (weight %v)", wr, w0)
		}
	}
}

func TestQueryWeighted(t *testing.T) {
	s := loadFig1(t, core.Options{Z: 8})
	rs, err := s.QueryWeighted([]string{"john", "vcr"}, 3, cn.Weights{Containment: 1, Reference: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 || len(rs) > 3 {
		t.Fatalf("got %d results", len(rs))
	}
	// Weighted scores must be non-decreasing.
	w := cn.Weights{Containment: 1, Reference: 2}
	for i := 1; i < len(rs); i++ {
		if rs[i-1].Net.WeightedScore(w) > rs[i].Net.WeightedScore(w) {
			t.Fatal("weighted ranking not sorted")
		}
	}
}
