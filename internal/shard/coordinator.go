package shard

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/kwindex"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/qserve"
	"repro/internal/rank"
)

// ErrNoQuorum is returned when fewer than a quorum of shards can answer
// a query's lookup phase (or no shard is left to execute a cover). The
// web layer maps it to 503 + Retry-After: a mostly-empty answer must
// not be served as a result set, loudly annotated or not.
var ErrNoQuorum = errors.New("shard: quorum of shards unavailable")

// CoordinatorOptions configure a Coordinator. The zero value selects
// the defaults.
type CoordinatorOptions struct {
	// Quorum is the minimum number of shards that must answer the
	// lookup phase (default: majority, n/2+1). Below it queries fail
	// with ErrNoQuorum instead of degrading.
	Quorum int
	// RequestTimeout bounds each shard request (default 5s).
	RequestTimeout time.Duration
	// Retry is the per-request retry policy for transient failures
	// (default: 2 attempts, 10ms base backoff).
	Retry fault.RetryPolicy
	// BreakerThreshold consecutive failures open a shard's circuit
	// breaker (default 3); BreakerWindow is how long it fast-fails
	// before admitting a probe (default 2s).
	BreakerThreshold int
	BreakerWindow    time.Duration
	// HealthTTL caches ShardStates probes for this long (default 1s;
	// negative disables caching). The serving layer consults health on
	// every query, which must not cost a full shard fan-out each time.
	HealthTTL time.Duration
	// Manifest, when non-nil, lets Validate check each shard serves the
	// split it records (CRC + scheme + count).
	Manifest *Manifest
	// HTTPClient overrides the transport (tests use the httptest
	// server's client). Default: a dedicated pooled client.
	HTTPClient *http.Client
	// Logf receives operational messages (default log.Printf).
	Logf func(format string, args ...any)
}

func (o *CoordinatorOptions) defaults(n int) {
	if o.Quorum <= 0 {
		o.Quorum = n/2 + 1
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.Retry.Attempts == 0 {
		o.Retry = fault.RetryPolicy{Attempts: 2, Base: 10 * time.Millisecond, Max: 250 * time.Millisecond, Jitter: 0.5}
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerWindow <= 0 {
		o.BreakerWindow = 2 * time.Second
	}
	if o.HealthTTL == 0 {
		o.HealthTTL = time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
}

// Coordinator scatter-gathers keyword queries across N shard servers.
// It implements qserve.Engine, so the full serving layer — result
// cache, singleflight, admission control, breaker, health — fronts it
// unchanged; it also implements the health interfaces (IndexHealthState
// with the quorum rule, ShardStates for per-shard reporting).
type Coordinator struct {
	sys     *core.System
	clients []*shardClient
	opts    CoordinatorOptions

	lookupLat  obs.Histogram // phase 1 wall time per query
	executeLat obs.Histogram // phase 2 wall time per query
	mergeLat   obs.Histogram // merge wall time per query

	queries       atomic.Int64
	degraded      atomic.Int64
	reassignments atomic.Int64
	crcMismatches atomic.Int64

	stMu    sync.Mutex
	stCache []qserve.ShardState // guarded by stMu — last probe result
	stAt    time.Time           // guarded by stMu — when it was taken
}

var (
	_ qserve.Engine       = (*Coordinator)(nil)
	_ qserve.ScoredEngine = (*Coordinator)(nil)
)

// NewCoordinator wires a coordinator to shard servers at addrs (base
// URLs, index = shard id). sys supplies the replicated structural data
// used to derive networks and plans; its own Index field is never
// consulted for answers.
func NewCoordinator(sys *core.System, addrs []string, opts CoordinatorOptions) *Coordinator {
	opts.defaults(len(addrs))
	c := &Coordinator{sys: sys, opts: opts}
	for i, a := range addrs {
		c.clients = append(c.clients, &shardClient{
			id:        i,
			base:      a,
			hc:        opts.HTTPClient,
			timeout:   opts.RequestTimeout,
			threshold: opts.BreakerThreshold,
			window:    opts.BreakerWindow,
		})
	}
	return c
}

// N returns the shard count.
func (c *Coordinator) N() int { return len(c.clients) }

func (c *Coordinator) quorum() int { return c.opts.Quorum }

// Validate probes every shard and checks identity: id, count, hash
// scheme, and — when a manifest was provided — the partition CRC. A
// coordinator serving in front of mismatched shards would silently
// misroute, so deployments call this before taking traffic.
func (c *Coordinator) Validate(ctx context.Context) error {
	for i, cl := range c.clients {
		var st StatsResponse
		if err := cl.call(ctx, "/shard/stats", struct{}{}, &st, c.opts.Retry); err != nil {
			return fmt.Errorf("shard: validating shard %d: %w", i, err)
		}
		if st.Shard != i || st.Of != len(c.clients) {
			return fmt.Errorf("shard: %s identifies as shard %d/%d, expected %d/%d", cl.base, st.Shard, st.Of, i, len(c.clients))
		}
		if st.Scheme != HashScheme {
			return fmt.Errorf("shard: %s uses hash scheme %q, coordinator uses %q", cl.base, st.Scheme, HashScheme)
		}
		if c.opts.Manifest != nil && st.CRC != c.opts.Manifest.Shards[i].CRC {
			return fmt.Errorf("shard: %s serves partition CRC %08x, manifest records %08x — wrong split?", cl.base, st.CRC, c.opts.Manifest.Shards[i].CRC)
		}
	}
	return nil
}

// QueryContext implements qserve.Engine: the scatter-gather top-k query.
func (c *Coordinator) QueryContext(ctx context.Context, keywords []string, k int) ([]exec.Result, error) {
	if k <= 0 {
		return nil, ctx.Err()
	}
	rs, _, err := c.query(ctx, keywords, k, exec.NestedLoop, nil, nil)
	return rs, err
}

// QueryAllStrategyContext implements qserve.Engine: the scatter-gather
// full-result query.
func (c *Coordinator) QueryAllStrategyContext(ctx context.Context, keywords []string, strat exec.Strategy) ([]exec.Result, error) {
	rs, _, err := c.query(ctx, keywords, 0, strat, nil, nil)
	return rs, err
}

// QueryScoredContext implements qserve.ScoredEngine: the scatter-gather
// top-k query ranked by the named scorer, with the relaxation record.
// The default scorer keeps the per-shard top-k caps and the early-
// terminating canonical merge byte-identical to QueryContext; any other
// scorer fetches full streams (a shard-side cap could prune a result
// the scorer would promote) and re-ranks the merged list exactly like a
// single node would.
func (c *Coordinator) QueryScoredContext(ctx context.Context, keywords []string, k int, scorer string) ([]exec.Result, *pipeline.Relaxation, error) {
	name := scorer
	if name == "" {
		name = c.sys.Opts.Scorer
	}
	sc, err := rank.New(name)
	if err != nil {
		return nil, nil, err
	}
	if k <= 0 {
		return nil, nil, ctx.Err()
	}
	return c.query(ctx, keywords, k, exec.NestedLoop, sc, nil)
}

// QueryTraced is QueryContext with a per-query obs.Trace covering the
// coordinator phases (scatter-lookup, the local pipeline's derivation
// stages, scatter-execute, merge).
func (c *Coordinator) QueryTraced(ctx context.Context, keywords []string, k int) (*obs.Trace, []exec.Result, error) {
	tr := obs.NewTrace()
	rs, _, err := c.query(ctx, keywords, k, exec.NestedLoop, nil, tr)
	return tr, rs, err
}

// query is the two-phase scatter-gather path; see the package comment
// for the protocol and its equivalence argument. A nil (or default)
// scorer is the byte-identical canonical path; a non-default scorer
// turns off the per-shard and merge top-k cutoffs and re-ranks the full
// merged list. The relaxation record comes from the coordinator's local
// derivation; shards relax identically against the same merged lists
// (the CRC cross-check would catch any divergence).
func (c *Coordinator) query(ctx context.Context, keywords []string, k int, strat exec.Strategy, sc rank.Scorer, trace *obs.Trace) ([]exec.Result, *pipeline.Relaxation, error) {
	c.queries.Add(1)
	n := len(c.clients)

	// Normalize once; wire lists are keyed by the normalized form.
	norms := make([]string, 0, len(keywords))
	seenNorm := make(map[string]bool)
	for _, kw := range keywords {
		nk := NormKeyword(kw)
		if nk == "" {
			return nil, nil, fmt.Errorf("shard: keyword %q has no tokens", kw)
		}
		if !seenNorm[nk] {
			seenNorm[nk] = true
			norms = append(norms, nk)
		}
	}
	if c.sys.Opts.Relax {
		// Relaxation may substitute a no-match phrase by one of its
		// tokens, so the merged query-scoped source must carry each
		// token's list too — for the coordinator's own derivation and for
		// every shard's identical one.
		for _, kw := range keywords {
			for _, t := range kwindex.Tokenize(kw) {
				if !seenNorm[t] {
					seenNorm[t] = true
					norms = append(norms, t)
				}
			}
		}
	}

	// Phase 1: scatter the lookups; the union of the live partitions'
	// lists is the (possibly partial) global containing list.
	start := time.Now()
	lookups := make([]LookupResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range c.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.clients[i].call(ctx, "/shard/lookup", LookupRequest{Keywords: norms}, &lookups[i], c.opts.Retry)
			if errs[i] == nil && (lookups[i].Shard != i || lookups[i].Of != n) {
				errs[i] = fmt.Errorf("shard %d at %s identifies as %d/%d", i, c.clients[i].base, lookups[i].Shard, lookups[i].Of)
			}
		}(i)
	}
	wg.Wait()
	c.lookupLat.Observe(time.Since(start))
	trace.Add(obs.Span{Stage: "scatter-lookup", Start: start, Duration: time.Since(start), In: int64(n), Out: int64(len(norms))})
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	alive := make([]bool, n)
	var dead []int
	live := 0
	for i := range c.clients {
		if errs[i] == nil {
			alive[i] = true
			live++
		} else {
			dead = append(dead, i)
		}
	}
	if live < c.quorum() {
		return nil, nil, fmt.Errorf("%w: %d of %d shards answered (quorum %d); first failure: %v", ErrNoQuorum, live, n, c.quorum(), errs[dead[0]])
	}
	if len(dead) > 0 {
		// Loud, never silent: the answer excludes every result tree that
		// contains a TO of a dead partition. The serving layer attaches
		// this note to the response and refuses to cache it.
		var names []string
		for _, i := range dead {
			names = append(names, fmt.Sprintf("shard %d of %d at %s", i, n, c.clients[i].base))
			c.opts.Logf("shard: lookup phase lost %s: %v", names[len(names)-1], errs[i])
		}
		c.degraded.Add(1)
		qserve.NoteDegradation(ctx, qserve.Degradation{
			Shards: names,
			Detail: fmt.Sprintf("answers computed without %d of %d index partitions: results containing their target objects are missing", len(dead), n),
		})
	}

	// Merge the partition slices into the query-scoped global source.
	merged := make(map[string][]kwindex.Posting, len(norms))
	for _, nk := range norms {
		var parts [][]kwindex.Posting
		for i := range c.clients {
			if !alive[i] {
				continue
			}
			if wl, ok := lookups[i].Lists[nk]; ok {
				ps, ok := DecodeLists(map[string]WireList{nk: wl})
				if !ok {
					return nil, nil, fmt.Errorf("shard: shard %d returned malformed postings for %q", i, nk)
				}
				parts = append(parts, ps[nk])
			}
		}
		merged[nk] = MergePostings(parts)
	}
	globalPostings, globalKeywords := 0, 0
	for i := range c.clients {
		if alive[i] {
			globalPostings += lookups[i].Postings
			if lookups[i].Keywords > globalKeywords {
				globalKeywords = lookups[i].Keywords
			}
		}
	}
	src := NewQuerySource(merged, globalPostings, globalKeywords)

	// Derive the network list locally — the same derivation every shard
	// performs — to attach results to networks and cross-check CRCs.
	q := &pipeline.Query{Keywords: keywords, Mode: pipeline.ModeNetworks, Trace: trace}
	if err := c.sys.PipelineWith(src).Run(ctx, q); err != nil {
		return nil, nil, err
	}
	if len(q.Nets) == 0 {
		// Nothing to execute — relaxation dropped every keyword, or the
		// shape admits no candidate network. Every shard would derive
		// the same empty list (CRC of nothing), so skip the scatter.
		return nil, q.Relaxation, nil
	}
	wantCRC := CanonCRC(q.Nets)

	// A non-default scorer needs the complete result set: per-shard
	// top-k caps and the merge cutoff are only sound for the canonical
	// order it may depart from.
	fetchK := k
	if !rank.IsDefault(sc) {
		fetchK = 0
	}

	// Phase 2: scatter execution. Every live shard owns its own
	// partition; dead partitions are covered by survivors — execution
	// needs only this request (it carries the full merged postings) and
	// the replicated structural data, so reassignment keeps the answer
	// exact.
	startExec := time.Now()
	covers := make([][]int, n)
	var pending []int // partitions needing a (re)assignment
	for p := 0; p < n; p++ {
		if alive[p] {
			covers[p] = append(covers[p], p)
		} else {
			pending = append(pending, p)
		}
	}
	wireLists := EncodeLists(merged)
	streams := make([][]exec.Result, 0, n)
	// Bounded reassignment rounds: each round either succeeds or marks
	// at least one more shard dead, so n rounds always suffice.
	for round := 0; round < n; round++ {
		// Distribute pending partitions round-robin over live shards.
		if len(pending) > 0 {
			sortInts(pending)
			var hosts []int
			for i := range c.clients {
				if alive[i] {
					hosts = append(hosts, i)
				}
			}
			if len(hosts) == 0 {
				return nil, nil, fmt.Errorf("%w: no shard left to execute partitions %v", ErrNoQuorum, pending)
			}
			for j, p := range pending {
				covers[hosts[j%len(hosts)]] = append(covers[hosts[j%len(hosts)]], p)
			}
			if round > 0 {
				c.reassignments.Add(int64(len(pending)))
				c.opts.Logf("shard: reassigned partitions %v to surviving shards", pending)
			}
			pending = nil
		}
		// Fan this round's requests to shards with uncollected covers.
		type execOut struct {
			resp ExecResponse
			err  error
		}
		// Dense per-shard slots, not a map: the gather below walks shards
		// in index order so lost-shard logs, the pending list, and the
		// stream order feeding the merge are identical across runs.
		outs := make([]*execOut, n)
		var ewg sync.WaitGroup
		for i := range c.clients {
			if !alive[i] || len(covers[i]) == 0 {
				continue
			}
			ewg.Add(1)
			go func(i int) {
				defer ewg.Done()
				parts := covers[i]
				out := &execOut{}
				out.err = c.clients[i].call(ctx, "/shard/execute", ExecRequest{
					Keywords:       keywords,
					K:              fetchK,
					Strategy:       uint8(strat),
					N:              n,
					Parts:          parts,
					Lists:          wireLists,
					GlobalPostings: globalPostings,
					GlobalKeywords: globalKeywords,
				}, &out.resp, c.opts.Retry)
				if out.err == nil && out.resp.NetsCRC != wantCRC {
					c.crcMismatches.Add(1)
					out.err = fmt.Errorf("shard %d derived networks CRC %08x, coordinator %08x — mismatched structural data?", i, out.resp.NetsCRC, wantCRC)
				}
				outs[i] = out
			}(i)
		}
		ewg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		for i, out := range outs {
			if out == nil {
				continue // shard had no cover this round
			}
			if out.err != nil {
				c.opts.Logf("shard: execute phase lost shard %d: %v", i, out.err)
				alive[i] = false
				pending = append(pending, covers[i]...)
				covers[i] = nil
				continue
			}
			stream := make([]exec.Result, 0, len(out.resp.Results))
			for _, wr := range out.resp.Results {
				pi := int(wr.Ord >> 32)
				if pi < 0 || pi >= len(q.Nets) {
					return nil, nil, fmt.Errorf("shard: shard %d returned result for plan %d of %d", i, pi, len(q.Nets))
				}
				stream = append(stream, exec.Result{Net: q.Nets[pi], Bind: wr.Bind, Score: wr.Score, Ord: wr.Ord})
			}
			streams = append(streams, stream)
			covers[i] = nil
		}
		if len(pending) == 0 {
			break
		}
	}
	if len(pending) > 0 {
		return nil, nil, fmt.Errorf("%w: partitions %v still unexecuted after reassignment", ErrNoQuorum, pending)
	}
	c.executeLat.Observe(time.Since(startExec))
	trace.Add(obs.Span{Stage: "scatter-execute", Start: startExec, Duration: time.Since(startExec), In: int64(n), Out: int64(len(streams))})

	// Merge the per-shard streams on the canonical order with top-k
	// cutoff, then apply the single-node rank stage's minimality filter.
	startMerge := time.Now()
	out := MergeTopK(streams, fetchK)
	if c.sys.Opts.StrictMinimal {
		kept := out[:0]
		for _, r := range out {
			if exec.IsMinimal(src, r) {
				kept = append(kept, r)
			}
		}
		out = kept
	}
	if !rank.IsDefault(sc) {
		// Re-rank exactly as the single-node rank stage would: the
		// query-scoped source carries the globally merged postings, so
		// content-weighted costs match a single node's byte for byte.
		out = sc.Rank(rank.Context{TSS: c.sys.TSS, Index: src, Keywords: q.Norm}, out, k)
	}
	c.mergeLat.Observe(time.Since(startMerge))
	trace.Add(obs.Span{Stage: "merge", Start: startMerge, Duration: time.Since(startMerge), In: int64(len(streams)), Out: int64(len(out))})
	return out, q.Relaxation, nil
}

// MergeTopK merges per-shard result streams — each ascending in the
// canonical (Score, Ord) order — into the globally first k results
// (k ≤ 0 means all), with early termination at the cutoff. Duplicate
// results (an overlapping cover after a mid-query reassignment race)
// share an Ord, order adjacently, and are dropped defensively; disjoint
// covers produce none.
func MergeTopK(streams [][]exec.Result, k int) []exec.Result {
	idx := make([]int, len(streams))
	var out []exec.Result
	for {
		best := -1
		for s := range streams {
			if idx[s] >= len(streams[s]) {
				continue
			}
			if best < 0 || exec.OrdLess(streams[s][idx[s]], streams[best][idx[best]]) {
				best = s
			}
		}
		if best < 0 {
			return out
		}
		r := streams[best][idx[best]]
		idx[best]++
		if len(out) > 0 && out[len(out)-1].Ord == r.Ord {
			continue
		}
		out = append(out, r)
		if k > 0 && len(out) >= k {
			return out
		}
	}
}

// ShardStates probes every shard for /healthz and /debug surfaces: a
// shard whose breaker is open is reported unavailable without a probe
// (that is the breaker's point); the rest answer a short stats request.
// Probes are cached for HealthTTL so the serving layer's per-query
// health check does not cost a shard fan-out each time.
func (c *Coordinator) ShardStates() []qserve.ShardState {
	if c.opts.HealthTTL > 0 {
		c.stMu.Lock()
		if c.stCache != nil && time.Since(c.stAt) < c.opts.HealthTTL {
			cached := append([]qserve.ShardState(nil), c.stCache...)
			c.stMu.Unlock()
			return cached
		}
		c.stMu.Unlock()
	}
	states := make([]qserve.ShardState, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *shardClient) {
			defer wg.Done()
			st := qserve.ShardState{
				ID:        i,
				Addr:      cl.base,
				P50Millis: cl.lat.Quantile(0.50).Milliseconds(),
				P99Millis: cl.lat.Quantile(0.99).Milliseconds(),
			}
			if cl.broken() {
				st.State, st.Detail = string(core.IndexUnavailable), "circuit breaker open"
				states[i] = st
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), c.opts.RequestTimeout)
			defer cancel()
			var sr StatsResponse
			if err := cl.call(ctx, "/shard/stats", struct{}{}, &sr, fault.RetryPolicy{Attempts: 1}); err != nil {
				st.State, st.Detail = string(core.IndexUnavailable), err.Error()
			} else if sr.Shard != i || sr.Scheme != HashScheme {
				st.State = string(core.IndexUnavailable)
				st.Detail = fmt.Sprintf("identifies as shard %d scheme %q", sr.Shard, sr.Scheme)
			} else {
				st.State, st.Detail = sr.IndexState, sr.IndexErr
			}
			states[i] = st
		}(i, cl)
	}
	wg.Wait()
	if c.opts.HealthTTL > 0 {
		c.stMu.Lock()
		c.stCache = append([]qserve.ShardState(nil), states...)
		c.stAt = time.Now()
		c.stMu.Unlock()
	}
	return states
}

// IndexHealthState implements the serving layer's health probe with the
// quorum rule: unavailable only when fewer than a quorum of shards
// answer; degraded while any shard is down or degraded (answers may
// carry loud degradation notes); ok otherwise.
func (c *Coordinator) IndexHealthState() (core.IndexHealth, error) {
	states := c.ShardStates()
	live, notOK := 0, 0
	var firstDetail string
	for _, st := range states {
		if st.State != string(core.IndexUnavailable) {
			live++
		}
		if st.State != string(core.IndexOK) {
			notOK++
			if firstDetail == "" {
				firstDetail = fmt.Sprintf("shard %d at %s: %s (%s)", st.ID, st.Addr, st.State, st.Detail)
			}
		}
	}
	if live < c.quorum() {
		return core.IndexUnavailable, fmt.Errorf("%d of %d shards reachable, quorum is %d; %s", live, len(states), c.quorum(), firstDetail)
	}
	if notOK > 0 {
		return core.IndexDegraded, fmt.Errorf("%d of %d shards not ok; %s", notOK, len(states), firstDetail)
	}
	return core.IndexOK, nil
}

// CoordSnapshot is the coordinator's Stats view, shaped for JSON.
type CoordSnapshot struct {
	N             int                 `json:"n"`
	Quorum        int                 `json:"quorum"`
	Queries       int64               `json:"queries"`
	Degraded      int64               `json:"degraded"`
	Reassignments int64               `json:"reassignments"`
	CRCMismatches int64               `json:"crc_mismatches"`
	LookupP50     time.Duration       `json:"lookup_p50_ns"`
	ExecuteP50    time.Duration       `json:"execute_p50_ns"`
	MergeP50      time.Duration       `json:"merge_p50_ns"`
	Shards        []qserve.ShardState `json:"shards"`
}

// Stats snapshots the coordinator counters, phase latencies and
// per-shard states.
func (c *Coordinator) Stats() CoordSnapshot {
	snap := CoordSnapshot{
		N:             len(c.clients),
		Quorum:        c.quorum(),
		Queries:       c.queries.Load(),
		Degraded:      c.degraded.Load(),
		Reassignments: c.reassignments.Load(),
		CRCMismatches: c.crcMismatches.Load(),
		LookupP50:     c.lookupLat.Quantile(0.50),
		ExecuteP50:    c.executeLat.Quantile(0.50),
		MergeP50:      c.mergeLat.Quantile(0.50),
		Shards:        c.ShardStates(),
	}
	sort.Slice(snap.Shards, func(i, j int) bool { return snap.Shards[i].ID < snap.Shards[j].ID })
	return snap
}
