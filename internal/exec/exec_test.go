package exec_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
)

func fig1System(t *testing.T, opts core.Options) *core.System {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLookupCacheBasics(t *testing.T) {
	c := exec.NewLookupCache(0)
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("fresh cache stats = %d/%d", h, m)
	}
	s := fig1System(t, core.Options{Z: 8, CacheSize: 0})
	if _, err := s.QueryAll([]string{"us", "vcr"}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheReducesIO(t *testing.T) {
	// The optimized algorithm must issue fewer page reads than the naive
	// one for a query with repeated sub-lookups (the Figure 2 MVD data:
	// both lineitems connect to the same TV part).
	cached := fig1System(t, core.Options{Z: 8, CacheSize: 0})
	naive := fig1System(t, core.Options{Z: 8, CacheSize: -1})

	cached.Store.ResetStats()
	if _, err := cached.QueryAll([]string{"us", "vcr"}); err != nil {
		t.Fatal(err)
	}
	c := cached.Store.Stats.Snapshot()

	naive.Store.ResetStats()
	if _, err := naive.QueryAll([]string{"us", "vcr"}); err != nil {
		t.Fatal(err)
	}
	n := naive.Store.Stats.Snapshot()

	if c.Lookups >= n.Lookups {
		t.Fatalf("cached lookups %d >= naive lookups %d", c.Lookups, n.Lookups)
	}
}

func TestCacheCapacity(t *testing.T) {
	c := exec.NewLookupCache(1)
	// Capacity is honored indirectly: after filling, puts are dropped but
	// correctness is preserved (exercised through a query).
	s := fig1System(t, core.Options{Z: 8, CacheSize: 1})
	a, err := s.QueryAll([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	s2 := fig1System(t, core.Options{Z: 8, CacheSize: -1})
	b, err := s2.QueryAll([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("tiny cache changed results: %d vs %d", len(a), len(b))
	}
	_ = c
}

func TestResultsAreDistinctTrees(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	rs, err := s.QueryAll([]string{"tv", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range rs {
		// No result may bind the same target object twice.
		set := map[int64]bool{}
		for _, to := range r.Bind {
			if set[to] {
				t.Fatalf("result binds TO %d twice: %v", to, r.Bind)
			}
			set[to] = true
		}
		// No duplicate results.
		if k := r.Key(); seen[k] {
			t.Fatalf("duplicate result %s", k)
		} else {
			seen[k] = true
		}
	}
}

func TestEvaluateEarlyStop(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	plans, err := s.Plans([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
	n := 0
	for _, p := range plans {
		if err := ex.Evaluate(p.Plan, func(exec.Result) bool { n++; return false }); err != nil {
			t.Fatal(err)
		}
	}
	if n != len(plansWithResults(t, s, plans)) {
		t.Fatalf("early stop produced %d results across %d plans", n, len(plans))
	}
}

func plansWithResults(t *testing.T, s *core.System, plans []exec.Planned) []int {
	t.Helper()
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
	var out []int
	for i, p := range plans {
		found := false
		if err := ex.Evaluate(p.Plan, func(exec.Result) bool { found = true; return false }); err != nil {
			t.Fatal(err)
		}
		if found {
			out = append(out, i)
		}
	}
	return out
}

func TestTopKWorkers(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8, Workers: 8})
	for _, k := range []int{1, 2, 5, 100} {
		rs, err := s.Query([]string{"us", "vcr"}, k)
		if err != nil {
			t.Fatal(err)
		}
		all, err := s.QueryAll([]string{"us", "vcr"})
		if err != nil {
			t.Fatal(err)
		}
		want := k
		if len(all) < k {
			want = len(all)
		}
		if len(rs) != want {
			t.Fatalf("k=%d: got %d results, want %d", k, len(rs), want)
		}
		for i := 1; i < len(rs); i++ {
			if rs[i-1].Score > rs[i].Score {
				t.Fatalf("k=%d: results unsorted", k)
			}
		}
	}
	if rs, _ := s.Query([]string{"us", "vcr"}, 0); rs != nil {
		t.Fatal("k=0 returned results")
	}
}

func TestConstrainedEvaluation(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	plans, err := s.Plans([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
	for _, pp := range plans {
		p := pp.Plan
		var base []exec.Result
		if err := ex.Evaluate(p, func(r exec.Result) bool {
			base = append(base, r)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(base) == 0 {
			continue
		}
		// Pre-binding occurrence 0 to its value in base[0] must return a
		// subset of base, all with that binding.
		want := base[0].Bind[0]
		var got []exec.Result
		err := ex.EvaluateConstrained(p, exec.Constraint{PreBind: map[int]int64{0: want}}, func(r exec.Result) bool {
			got = append(got, r)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 || len(got) > len(base) {
			t.Fatalf("constrained returned %d of %d", len(got), len(base))
		}
		for _, r := range got {
			if r.Bind[0] != want {
				t.Fatalf("constraint violated: %v", r.Bind)
			}
		}
		// Restricting to an empty set yields nothing.
		empty := make([]map[int64]bool, len(p.Net.Occs))
		empty[0] = map[int64]bool{}
		n := 0
		if err := ex.EvaluateConstrained(p, exec.Constraint{Restrict: empty}, func(exec.Result) bool {
			n++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("empty restriction returned %d results", n)
		}
		break
	}
}

func TestSortedSet(t *testing.T) {
	got := exec.SortedSet(map[int64]bool{5: true, 1: true, 3: true})
	want := []int64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedSet = %v", got)
		}
	}
	if exec.SortedSet(nil) == nil {
		// empty-but-non-nil is fine; nil is fine too
		return
	}
}
