package experiments

import (
	"time"

	"repro/internal/banks"
	"repro/internal/core"
)

// FigBaseline quantifies the §2 comparison: a BANKS-style data-graph
// search against XKeyword's connection relations, top-10 answers to the
// same author-pair queries, as the dataset grows. The data-graph
// baseline must traverse the raw XML graph per query; XKeyword probes
// the precomputed relations. X is the dataset scale multiplier.
func FigBaseline(cfg Config, scales []int) (Figure, error) {
	cfg.defaults()
	if len(scales) == 0 {
		scales = []int{1, 2, 4}
	}
	fig := Figure{ID: "baseline", Title: "data-graph baseline (BANKS-style) vs XKeyword, top-10", XLabel: "scale"}
	bk := Series{Label: "banks (data graph)"}
	xk := Series{Label: "xkeyword (relations)"}
	for _, scale := range scales {
		p := cfg.DBLP
		p.PapersPerYear *= scale
		p.Authors *= scale
		wcfg := cfg
		wcfg.DBLP = p
		w, err := NewWorkload(wcfg)
		if err != nil {
			return fig, err
		}
		sys, err := w.load(core.PresetXKeyword, 0)
		if err != nil {
			return fig, err
		}
		searcher := banks.NewSearcher(w.DS.Data)

		var bp, xp Point
		bp.X, xp.X = scale, scale
		runs := 0
		for _, pair := range w.Pairs {
			t0 := time.Now()
			trees, err := searcher.Search(pair[:], banks.Options{MaxScore: cfg.Z, K: 10})
			if err != nil {
				return fig, err
			}
			bp.Millis += float64(time.Since(t0).Microseconds()) / 1000
			bp.Results += float64(len(trees))

			// Warm the CN memo outside the measurement, as the paper's
			// system would have generated CNs for the schema already.
			if _, err := sys.Plans(pair[:]); err != nil {
				return fig, err
			}
			nres := 0
			dur, io := measure(sys.Store, func() {
				rs, err := sys.Query(pair[:], 10)
				if err == nil {
					nres = len(rs)
				}
			})
			xp.Millis += float64(dur.Microseconds()) / 1000
			xp.Cost += io.Cost()
			xp.Lookups += float64(io.Lookups)
			xp.Results += float64(nres)
			runs++
		}
		if runs > 0 {
			for _, pt := range []*Point{&bp, &xp} {
				pt.Millis /= float64(runs)
				pt.Cost /= float64(runs)
				pt.Lookups /= float64(runs)
				pt.Results /= float64(runs)
			}
		}
		bk.Points = append(bk.Points, bp)
		xk.Points = append(xk.Points, xp)
	}
	fig.Series = []Series{bk, xk}
	return fig, nil
}
