package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
)

// ExampleSystem_Query loads the paper's Figure 1 instance and runs the
// introductory keyword query.
func ExampleSystem_Query() {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.Load(ds.Schema, datagen.TPCHSpec(), ds.Data.Clone(), core.Options{Z: 8})
	if err != nil {
		log.Fatal(err)
	}
	results, err := sys.Query([]string{"John", "VCR"}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best score: %d\n", results[0].Score)
	fmt.Printf("objects: %d\n", len(results[0].Bind))
	// Output:
	// best score: 6
	// objects: 3
}

// ExampleSystem_Networks shows the candidate-network API.
func ExampleSystem_Networks() {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.Load(ds.Schema, datagen.TPCHSpec(), ds.Data.Clone(), core.Options{Z: 6})
	if err != nil {
		log.Fatal(err)
	}
	nets, err := sys.Networks([]string{"TV", "VCR"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smallest network size: %d\n", nets[0].Size())
	// Output:
	// smallest network size: 0
}
