package segidx_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/kwindex"
	"repro/internal/segidx"
)

// The equivalence property: after any sequence of ingests, updates,
// deletes, flushes, compactions and reopens, the layered store answers
// ContainingList, SchemaNodes and TOSet exactly like a from-scratch
// in-memory kwindex.Index built over the surviving documents. The
// reference derivation below re-implements the keyword rule of
// kwindex.Build (distinct tokens of label and value, per field)
// independently, so a bug in the store's shared derivation cannot hide
// by mirroring itself.

var eqVocab = []string{
	"john", "mary", "smith", "vcr", "dvd", "order", "urgent", "tpc",
	"2001", "widget", "comment", "pending",
}

var eqSchemas = []string{"name", "comment", "partname", "description"}

// refIndex builds the reference in-memory index over surviving docs.
func refIndex(docs map[int64]segidx.Document) *kwindex.Index {
	postings := make(map[string][]kwindex.Posting)
	for to, d := range docs {
		for _, f := range d.Fields {
			seen := make(map[string]bool)
			for _, tok := range append(kwindex.Tokenize(f.Label), kwindex.Tokenize(f.Value)...) {
				if seen[tok] {
					continue
				}
				seen[tok] = true
				postings[tok] = append(postings[tok], kwindex.Posting{TO: to, Node: f.Node, SchemaNode: f.SchemaNode})
			}
		}
	}
	return kwindex.FromPostings(postings)
}

func randomDoc(rng *rand.Rand, to int64) segidx.Document {
	nf := 1 + rng.Intn(3)
	d := segidx.Document{TO: to}
	for i := 0; i < nf; i++ {
		words := ""
		for w := 0; w < 1+rng.Intn(3); w++ {
			words += eqVocab[rng.Intn(len(eqVocab))] + " "
		}
		d.Fields = append(d.Fields, segidx.Field{
			Node:       xmlNode(to*100 + int64(i)),
			SchemaNode: eqSchemas[rng.Intn(len(eqSchemas))],
			Label:      eqSchemas[rng.Intn(len(eqSchemas))],
			Value:      words,
		})
	}
	return d
}

// requireEquivalent compares every vocabulary keyword (plus a
// multi-token one) across the three query methods.
func requireEquivalent(t *testing.T, stage string, s *segidx.Store, ref *kwindex.Index) {
	t.Helper()
	keys := append(append([]string(nil), eqVocab...), "john smith", "absentword")
	for _, k := range keys {
		want := ref.ContainingList(k)
		got := s.ContainingList(k)
		if len(got) != 0 || len(want) != 0 {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: ContainingList(%q)\n got %+v\nwant %+v", stage, k, got, want)
			}
		}
		if sn := s.SchemaNodes(k); !reflect.DeepEqual(sn, ref.SchemaNodes(k)) {
			t.Fatalf("%s: SchemaNodes(%q) = %v, want %v", stage, k, sn, ref.SchemaNodes(k))
		}
		for _, schema := range append([]string{""}, eqSchemas...) {
			if ts := s.TOSet(k, schema); !reflect.DeepEqual(ts, ref.TOSet(k, schema)) {
				t.Fatalf("%s: TOSet(%q, %q) = %v, want %v", stage, k, schema, ts, ref.TOSet(k, schema))
			}
		}
	}
}

func runEquivalenceWorkload(t *testing.T, seed int64, base kwindex.Source, baseDocs map[int64]segidx.Document) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	opts := segidx.Options{Base: base, CompactAt: -1, FlushBytes: -1}
	s := openStore(t, dir, opts)

	// surviving mirrors what the store must serve.
	surviving := make(map[int64]segidx.Document, len(baseDocs))
	for to, d := range baseDocs {
		surviving[to] = d
	}

	const ops = 400
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(100); {
		case r < 55: // upsert (often colliding TOs, to exercise masking)
			to := int64(1 + rng.Intn(40))
			d := randomDoc(rng, to)
			mustAdd(t, s, d)
			surviving[to] = d
		case r < 75: // delete (sometimes of absent TOs)
			to := int64(1 + rng.Intn(50))
			mustDelete(t, s, to)
			delete(surviving, to)
		case r < 83: // batch of several ops, acknowledged atomically
			var b segidx.Batch
			for n := 0; n < 1+rng.Intn(4); n++ {
				if rng.Intn(3) == 0 {
					to := int64(1 + rng.Intn(50))
					b.DeleteTO(to)
					delete(surviving, to)
				} else {
					to := int64(1 + rng.Intn(40))
					d := randomDoc(rng, to)
					b.AddDoc(d)
					surviving[to] = d
				}
			}
			if err := s.Apply(b); err != nil {
				t.Fatal(err)
			}
		case r < 93:
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		case r < 97:
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		default: // crash-free restart
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s = openStore(t, dir, opts)
		}
		if i%50 == 49 {
			requireEquivalent(t, fmt.Sprintf("seed %d op %d", seed, i), s, refIndex(surviving))
		}
	}

	requireEquivalent(t, fmt.Sprintf("seed %d final", seed), s, refIndex(surviving))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	requireEquivalent(t, fmt.Sprintf("seed %d compacted", seed), s, refIndex(surviving))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = openStore(t, dir, opts)
	requireEquivalent(t, fmt.Sprintf("seed %d reopened", seed), s, refIndex(surviving))
}

func TestEquivalenceRandomizedWorkloads(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runEquivalenceWorkload(t, seed, nil, nil)
		})
	}
}

func TestEquivalenceRandomizedWorkloadsOverBase(t *testing.T) {
	// The base holds TOs 1..25; the workload updates and deletes into
	// that range, so base masking is exercised throughout.
	rng := rand.New(rand.NewSource(99))
	baseDocs := make(map[int64]segidx.Document)
	for to := int64(1); to <= 25; to++ {
		baseDocs[to] = randomDoc(rng, to)
	}
	base := refIndex(baseDocs)
	for seed := int64(11); seed <= 13; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runEquivalenceWorkload(t, seed, base, baseDocs)
		})
	}
}
