package fault

import (
	"sync/atomic"
	"time"
)

// RetryPolicy is the repo's blessed retry shape: a bounded number of
// attempts with exponential backoff and jitter between them. Unbounded
// or backoff-free retry loops turn one transient fault into a stall or
// a thundering herd — the xkvet retryloop analyzer flags hand-rolled
// loops that drop either half.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first
	// (default 3; values below 1 mean one try, i.e. no retry).
	Attempts int
	// Base is the delay before the first retry (default 500µs); each
	// subsequent retry doubles it.
	Base time.Duration
	// Max caps a single backoff delay (default 50ms).
	Max time.Duration
	// Jitter is the fraction of each delay that is randomized, 0..1
	// (default 0.5). Jitter keeps retries of concurrent readers from
	// hammering a recovering device in lockstep.
	Jitter float64
}

// DefaultRetry is the read path's default policy: three attempts spread
// over roughly a millisecond — enough to absorb a transient I/O hiccup,
// bounded enough that a dead disk fails a lookup in single-digit
// milliseconds instead of hanging it.
var DefaultRetry = RetryPolicy{Attempts: 3, Base: 500 * time.Microsecond, Max: 50 * time.Millisecond, Jitter: 0.5}

func (p RetryPolicy) defaults() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if p.Base <= 0 {
		p.Base = 500 * time.Microsecond
	}
	if p.Max <= 0 {
		p.Max = 50 * time.Millisecond
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.5
	}
	return p
}

// jitterSeq decorrelates the jitter of concurrent retriers without any
// shared lock; determinism is not needed here (the *injection* side is
// the deterministic one), only cheap spread.
var jitterSeq atomic.Uint64

// Do runs fn up to p.Attempts times, sleeping an exponentially growing,
// jittered delay between attempts, and returns the last error (nil on
// the first success). Retrying is only worth it for transient faults;
// callers that can classify errors should stop early by returning nil
// from fn and stashing the permanent error elsewhere — or simply accept
// a few wasted attempts, which the bound keeps cheap.
func (p RetryPolicy) Do(fn func() error) error {
	p = p.defaults()
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if attempt == p.Attempts-1 {
			break
		}
		delay := p.Base << uint(attempt)
		if delay > p.Max {
			delay = p.Max
		}
		if p.Jitter > 0 {
			r := rng{state: jitterSeq.Add(0x9e3779b97f4a7c15)}
			spread := float64(delay) * p.Jitter
			delay = time.Duration(float64(delay) - spread/2 + r.float()*spread)
		}
		time.Sleep(delay)
	}
	return err
}
