package segidx

// SetCrashHook installs a test-only hook invoked at the named points of
// flush and compaction; returning an error aborts the operation there,
// leaving the directory exactly as a kill at that instant would.
func (s *Store) SetCrashHook(f func(point string) error) { s.crash = f }

// Exported for white-box tests.
var (
	EncodeBatch = encodeBatch
	DecodeBatch = decodeBatch
	ReplayWAL   = replayWAL
)
