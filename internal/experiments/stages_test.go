package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestStageBreakdownRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := quickWorkload(t)
	tbl, err := experiments.StageBreakdown(w, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tbl.Rows))
	}
	byStage := map[string]experiments.StageRow{}
	for _, r := range tbl.Rows {
		byStage[r.Stage] = r
	}
	// Every warm query hits the CN memo (all author pairs share a shape).
	gen := byStage["generate"]
	if gen.CacheHits != 1 || gen.CacheMiss != 0 {
		t.Fatalf("warm generate hits/misses = %v/%v, want 1/0", gen.CacheHits, gen.CacheMiss)
	}
	if byStage["discover"].In == 0 || byStage["execute"].In == 0 {
		t.Fatal("cardinality columns empty")
	}
	out := tbl.Format()
	for _, want := range []string{"stage", "discover", "generate", "execute", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}
