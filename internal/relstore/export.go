package relstore

import "sort"

// Export returns a copy of the relation's contents and physical design,
// for serialization. Rows come out in physical (clustered) order, so a
// rebuild that re-applies the design reproduces the same layout.
func (r *Relation) Export() (rows []Row, clustered []int, orderings [][]int, hashCols []int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rows = make([]Row, len(r.rows))
	for i, row := range r.rows {
		rows[i] = append(Row(nil), row...)
	}
	clustered = append([]int(nil), r.clustered...)
	var ordKeys []string
	for k := range r.orderings {
		ordKeys = append(ordKeys, k)
	}
	sort.Strings(ordKeys)
	for _, k := range ordKeys {
		orderings = append(orderings, colsFromKey(k))
	}
	for c := range r.hashIdx {
		hashCols = append(hashCols, c)
	}
	sort.Ints(hashCols)
	return rows, clustered, orderings, hashCols
}

// Import rebuilds a relation from exported state: rows are inserted in
// order and the physical design re-applied. The relation must be empty.
func (r *Relation) Import(rows []Row, clustered []int, orderings [][]int, hashCols []int) error {
	for _, row := range rows {
		if err := r.Insert(row); err != nil {
			return err
		}
	}
	r.Seal()
	if len(clustered) > 0 {
		if err := r.Cluster(clustered...); err != nil {
			return err
		}
	}
	for _, cols := range orderings {
		if err := r.AddOrdering(cols...); err != nil {
			return err
		}
	}
	for _, c := range hashCols {
		if err := r.BuildHashIndex(c); err != nil {
			return err
		}
	}
	return nil
}

// Blobs returns a copy of every stored target-object BLOB.
func (s *Store) Blobs() map[int64][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[int64][]byte, len(s.blobs))
	for id, b := range s.blobs {
		out[id] = append([]byte(nil), b...)
	}
	return out
}
