// Package relstore is the relational substrate XKeyword runs on. The
// paper stores connection relations in Oracle 9i with single-attribute
// indexes and index-organized (clustered) tables; experiments are driven
// by page I/O behaviour. We substitute an in-memory relational engine
// with explicit paged storage and an LRU buffer pool so the same effects
// — random vs sequential access, clustering in the probe direction, MVD
// cardinality blow-up, buffer-cache reuse — are observable and counted.
package relstore

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// PageRows is the number of tuples per page. Connection relations hold
// only integer IDs, so pages are wide; 128 rows/page keeps relation page
// counts realistic at the benchmark scales.
const PageRows = 128

// PageKey identifies one page of one physical ordering of a relation.
type PageKey struct {
	Relation string
	Ordering string // "" for the primary (insertion/clustered) order
	Page     int32
}

// IOStats counts the logical and physical accesses of a store. All
// counters are cumulative and safe for concurrent use.
type IOStats struct {
	PageReads int64 // buffer-pool misses (simulated physical reads)
	SeqReads  int64 // the subset of PageReads that were sequential
	PageHits  int64 // buffer-pool hits
	Lookups   int64 // index/clustered lookups
	Scans     int64 // full relation scans
	RowsRead  int64 // tuples returned to the caller
}

// SeqFactor is how many sequential page reads cost as much as one random
// read. Disk-era hardware (the paper ran on 2002 disks) reads
// sequentially roughly an order of magnitude faster than it seeks.
const SeqFactor = 8

// Cost returns the weighted I/O cost: random reads plus sequential reads
// discounted by SeqFactor.
func (s *IOStats) Cost() float64 {
	snap := s.Snapshot()
	rand := snap.PageReads - snap.SeqReads
	return float64(rand) + float64(snap.SeqReads)/SeqFactor
}

func (s *IOStats) add(o IOStats) {
	atomic.AddInt64(&s.PageReads, o.PageReads)
	atomic.AddInt64(&s.SeqReads, o.SeqReads)
	atomic.AddInt64(&s.PageHits, o.PageHits)
	atomic.AddInt64(&s.Lookups, o.Lookups)
	atomic.AddInt64(&s.Scans, o.Scans)
	atomic.AddInt64(&s.RowsRead, o.RowsRead)
}

// Snapshot returns a copy of the counters, safe to read concurrently.
func (s *IOStats) Snapshot() IOStats {
	return IOStats{
		PageReads: atomic.LoadInt64(&s.PageReads),
		SeqReads:  atomic.LoadInt64(&s.SeqReads),
		PageHits:  atomic.LoadInt64(&s.PageHits),
		Lookups:   atomic.LoadInt64(&s.Lookups),
		Scans:     atomic.LoadInt64(&s.Scans),
		RowsRead:  atomic.LoadInt64(&s.RowsRead),
	}
}

// BufferPool is a fixed-capacity LRU page cache shared by all relations
// of a store. Access records a hit or a miss; misses evict the least
// recently used page once the pool is full.
type BufferPool struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List                // guarded by mu; front = most recent; values are PageKey
	items map[PageKey]*list.Element // guarded by mu
}

// NewBufferPool returns a pool holding at most capacity pages; capacity
// <= 0 disables caching (every access is a miss).
func NewBufferPool(capacity int) *BufferPool {
	return &BufferPool{cap: capacity, lru: list.New(), items: make(map[PageKey]*list.Element)}
}

// Access touches a page and reports whether it was cached.
func (p *BufferPool) Access(k PageKey) (hit bool) {
	if p.cap <= 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.items[k]; ok {
		p.lru.MoveToFront(el)
		return true
	}
	if p.lru.Len() >= p.cap {
		back := p.lru.Back()
		delete(p.items, back.Value.(PageKey))
		p.lru.Remove(back)
	}
	p.items[k] = p.lru.PushFront(k)
	return false
}

// Len returns the number of cached pages.
func (p *BufferPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// Reset empties the pool.
func (p *BufferPool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lru.Init()
	p.items = make(map[PageKey]*list.Element)
}
