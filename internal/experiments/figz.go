package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/exec"
)

// FigZ reproduces §7's sensitivity remark — "the absolute times are an
// order of magnitude smaller when we reduce Z by one" — by measuring,
// per maximum MTNN size Z, the candidate network count, the CN
// generation + planning time, and the evaluation time of the top-10
// results of an author-pair query.
func FigZ(w *Workload, zs []int) (Figure, error) {
	if len(zs) == 0 {
		zs = []int{5, 6, 7, 8}
	}
	fig := Figure{ID: "z", Title: "sensitivity to the maximum MTNN size Z", XLabel: "Z"}
	// CN generation is memoized per schema identity; regenerate the
	// dataset so every Z measures a cold generation even when other
	// figures ran first.
	fresh, err := NewWorkload(w.Config)
	if err != nil {
		return fig, err
	}
	w = fresh
	planSeries := Series{Label: "CN generation + planning"}
	evalSeries := Series{Label: "top-10 evaluation"}
	netSeries := Series{Label: "candidate networks"}
	for _, z := range zs {
		sys, err := core.LoadPrepared(w.Prepared, core.Options{
			Z: z, B: w.Config.B, PoolPages: w.Config.PoolPages, SkipBlobs: true,
		})
		if err != nil {
			return fig, err
		}
		var pp, ep, np Point
		pp.X, ep.X, np.X = z, z, z
		runs := 0
		for _, pair := range w.Pairs {
			t0 := time.Now()
			plans, err := sys.Plans(pair[:])
			if err != nil {
				return fig, err
			}
			// CN generation is memoized across same-shape queries; the
			// maximum over pairs is the cold (first) generation cost,
			// which is what grows with Z.
			if ms := float64(time.Since(t0).Microseconds()) / 1000; ms > pp.Millis {
				pp.Millis = ms
			}
			np.Results += float64(len(plans))

			ex := &exec.Executor{Store: sys.Store, TSS: sys.TSS, Index: sys.Index, Cache: exec.NewLookupCache(0)}
			nres := 0
			dur, io := measure(sys.Store, func() {
				for _, p := range plans {
					if nres >= 10 {
						break
					}
					_ = ex.Evaluate(p.Plan, func(exec.Result) bool {
						nres++
						return nres < 10
					})
				}
			})
			ep.Millis += float64(dur.Microseconds()) / 1000
			ep.Cost += io.Cost()
			ep.Lookups += float64(io.Lookups)
			ep.Results += float64(nres)
			runs++
		}
		if runs > 0 {
			for _, pt := range []*Point{&ep, &np} {
				pt.Millis /= float64(runs)
				pt.Cost /= float64(runs)
				pt.Lookups /= float64(runs)
				pt.Results /= float64(runs)
			}
		}
		planSeries.Points = append(planSeries.Points, pp)
		evalSeries.Points = append(evalSeries.Points, ep)
		netSeries.Points = append(netSeries.Points, np)
	}
	fig.Series = []Series{netSeries, planSeries, evalSeries}
	return fig, nil
}
