package persist_test

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/diskindex"
	"repro/internal/persist"
)

func loadFig1(t *testing.T) *core.System {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
		core.Options{Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	orig := loadFig1(t)
	var buf bytes.Buffer
	if err := persist.Save(&buf, orig, datagen.TPCHSpec()); err != nil {
		t.Fatal(err)
	}
	restored, err := persist.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Structural equality.
	if restored.Data.NumNodes() != orig.Data.NumNodes() || restored.Data.NumEdges() != orig.Data.NumEdges() {
		t.Fatal("data graph size changed")
	}
	if len(restored.Decomp.Fragments) != len(orig.Decomp.Fragments) {
		t.Fatalf("fragments: %d -> %d", len(orig.Decomp.Fragments), len(restored.Decomp.Fragments))
	}
	if restored.Store.TotalRows() != orig.Store.TotalRows() {
		t.Fatalf("rows: %d -> %d", orig.Store.TotalRows(), restored.Store.TotalRows())
	}
	if restored.M != orig.M {
		t.Fatalf("M: %d -> %d", orig.M, restored.M)
	}

	// Query equality, for several queries and both top-k and all modes.
	for _, q := range [][]string{{"john", "vcr"}, {"us", "vcr"}, {"tv", "vcr"}} {
		a, err := orig.QueryAll(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.QueryAll(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%v: %d results before, %d after", q, len(a), len(b))
		}
		for i := range a {
			if a[i].Key() != b[i].Key() {
				t.Fatalf("%v: result %d differs", q, i)
			}
		}
	}

	// Blobs survive.
	for _, id := range restored.Obj.Objects() {
		if _, ok := restored.Store.Blob(id); !ok {
			t.Fatalf("blob %d missing after restore", id)
		}
	}

	// Rendering still works (object graph and annotations intact).
	rs, err := restored.QueryAll([]string{"john", "vcr"})
	if err != nil || len(rs) == 0 {
		t.Fatalf("query after restore: %v, %d", err, len(rs))
	}
	if out := restored.RenderResult(rs[0]); out == "" {
		t.Fatal("empty rendering")
	}
}

func TestSaveLoadFile(t *testing.T) {
	orig := loadFig1(t)
	path := filepath.Join(t.TempDir(), "fig1.xkdb")
	if err := persist.SaveFile(path, orig, datagen.TPCHSpec()); err != nil {
		t.Fatal(err)
	}
	restored, err := persist.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Obj.NumObjects() != orig.Obj.NumObjects() {
		t.Fatal("object count changed")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := persist.Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := persist.LoadFile("/nonexistent/path"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestVersionCheck(t *testing.T) {
	orig := loadFig1(t)
	var buf bytes.Buffer
	if err := persist.Save(&buf, orig, datagen.TPCHSpec()); err != nil {
		t.Fatal(err)
	}
	// Corrupt: truncated stream.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := persist.Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestVersionMismatchError(t *testing.T) {
	// gob matches fields by name, so a stream holding only a future
	// Version decodes into the snapshot struct and must be rejected with
	// a message telling the operator to regenerate the snapshot.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&struct{ Version int }{Version: 99}); err != nil {
		t.Fatal(err)
	}
	_, err := persist.Load(&buf)
	if err == nil {
		t.Fatal("version-99 snapshot accepted")
	}
	for _, want := range []string{"version 99", "re-run the load stage"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestSidecarDiskIndex(t *testing.T) {
	orig := loadFig1(t)
	path := filepath.Join(t.TempDir(), "fig1.xkdb")
	if err := persist.SaveFile(path, orig, datagen.TPCHSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(persist.SidecarPath(path)); err != nil {
		t.Fatalf("sidecar not written: %v", err)
	}
	restored, err := persist.LoadFileOpts(path, persist.LoadOptions{DiskIndex: true, IndexCacheBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	rd, ok := restored.Index.(*diskindex.Reader)
	if !ok {
		t.Fatalf("index is %T, want *diskindex.Reader", restored.Index)
	}
	defer rd.Close()
	if rd.NumKeywords() == 0 {
		t.Fatal("disk index is empty")
	}
	for _, q := range [][]string{{"john", "vcr"}, {"tv", "vcr"}} {
		a, err := orig.QueryAll(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.QueryAll(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%v: %d results in memory, %d from disk index", q, len(a), len(b))
		}
		for i := range a {
			if a[i].Key() != b[i].Key() {
				t.Fatalf("%v: result %d differs", q, i)
			}
		}
	}
}

func TestLoadOptsMissingSidecar(t *testing.T) {
	orig := loadFig1(t)
	path := filepath.Join(t.TempDir(), "fig1.xkdb")
	if err := persist.SaveFile(path, orig, datagen.TPCHSpec()); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(persist.SidecarPath(path)); err != nil {
		t.Fatal(err)
	}
	if _, err := persist.LoadFileOpts(path, persist.LoadOptions{DiskIndex: true}); err == nil {
		t.Fatal("missing sidecar accepted")
	}
	// Without DiskIndex the snapshot alone is enough.
	if _, err := persist.LoadFile(path); err != nil {
		t.Fatal(err)
	}
}
