package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// crcgate enforces verify-before-use on CRC-guarded bytes: in a
// function that compares a hash/crc32 or hash/crc64 checksum of a
// buffer against a stored value, no other use of that buffer may
// precede the comparison. The disk formats this repo persists (.xki
// pages, WAL frames, segment manifests, shard manifests) all carry
// CRCs precisely so corrupt bytes are rejected before they are parsed;
// parsing first and verifying after means a bit flip has already
// steered control flow (the PR 5 chaos suite's "never silently wrong"
// invariant).
//
// The check is flow-based: the verification is a ==/!= comparison with
// a crc32/crc64 Checksum call on one side; the checksum call's buffer
// argument is the guarded value. Uses of the buffer before the
// comparison are exempt when they feed the comparison itself — the
// backward slice of the condition (extracting the stored CRC with
// binary.*Uint32 is necessarily a pre-verify read) — or merely fill or
// measure the buffer (io.ReadFull, copy, len, cap, append targets).
// Everything else is a use of unverified bytes and is reported.
var analyzerCrcgate = &Analyzer{
	Name: "crcgate",
	Doc:  "CRC-guarded bytes must be verified before any other use; extract-and-compare first, parse after",
	Run:  runCrcgate,
}

func runCrcgate(p *Pass) {
	for _, ff := range p.Flow.Funcs {
		checkCrcGate(p, ff)
	}
}

// verification is one checksum comparison found in a function.
type verification struct {
	cond  *ast.BinaryExpr
	pos   token.Pos
	buf   *types.Var          // the buffer the checksum covers
	slice map[*types.Var]bool // backward slice of the condition
}

func checkCrcGate(p *Pass, ff *FuncFlow) {
	var checks []*verification
	ast.Inspect(ff.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		for _, side := range [2]ast.Expr{be.X, be.Y} {
			buf := checksumBuffer(p, ff, side)
			if buf == nil {
				continue
			}
			checks = append(checks, &verification{
				cond:  be,
				pos:   be.Pos(),
				buf:   buf,
				slice: ff.BackwardVars(be),
			})
			break
		}
		return true
	})
	for _, v := range checks {
		reportEarlyUses(p, ff, v)
	}
}

// checksumBuffer resolves a crc32/crc64 checksum call (possibly behind
// one level of local variable) to the buffer variable it covers, or
// nil.
func checksumBuffer(p *Pass, ff *FuncFlow, e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	// The compared value may be a local: sum := crc32.Checksum(buf, tab).
	if v := ff.VarOf(e); v != nil {
		for _, d := range ff.DefsOf(v) {
			if d.RHS == nil {
				continue
			}
			if buf := checksumCallBuffer(p, ff, d.RHS); buf != nil {
				return buf
			}
		}
		return nil
	}
	return checksumCallBuffer(p, ff, e)
}

func checksumCallBuffer(p *Pass, ff *FuncFlow, e ast.Expr) *types.Var {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	pkg := fn.Pkg().Path()
	if pkg != "hash/crc32" && pkg != "hash/crc64" {
		return nil
	}
	if !strings.HasPrefix(fn.Name(), "Checksum") && fn.Name() != "Update" {
		return nil
	}
	for _, arg := range call.Args {
		t := p.TypeOf(arg)
		if t == nil {
			continue
		}
		if sl, ok := t.Underlying().(*types.Slice); ok {
			if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
				return sliceBase(ff, arg)
			}
		}
	}
	return nil
}

// sliceBase unwraps buf[a:b] / buf[a:] to the underlying variable.
func sliceBase(ff *FuncFlow, e ast.Expr) *types.Var {
	for {
		e = ast.Unparen(e)
		if sl, ok := e.(*ast.SliceExpr); ok {
			e = sl.X
			continue
		}
		return ff.VarOf(e)
	}
}

// reportEarlyUses flags uses of the guarded buffer that precede the
// verification and neither feed it nor fill the buffer.
func reportEarlyUses(p *Pass, ff *FuncFlow, v *verification) {
	for _, use := range ff.UsesOf(v.buf) {
		if use.Pos() >= v.pos {
			continue
		}
		if insideNode(ff, use, v.cond) {
			continue // part of the comparison itself
		}
		stmt := ff.EnclosingStmt(use)
		if stmt == nil {
			continue
		}
		if feedsVerification(ff, v, stmt) {
			continue // extracting the stored CRC (or the computed sum)
		}
		if fillsOrMeasures(p, ff, use) {
			continue
		}
		p.Reportf(use.Pos(), "%s is used before its checksum is verified at line %d; a bit flip has already been parsed — verify first, then use", v.buf.Name(), p.Fset.Position(v.pos).Line)
		return // one finding per verification is enough to act on
	}
}

func insideNode(ff *FuncFlow, n ast.Node, within ast.Node) bool {
	for p := n; p != nil; p = ff.flow.Parent(p) {
		if p == within {
			return true
		}
	}
	return false
}

// feedsVerification reports whether the statement only defines
// variables that are in the verification's backward slice — reading
// the buffer to extract the stored checksum is what verification is.
func feedsVerification(ff *FuncFlow, v *verification, stmt ast.Stmt) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	any := false
	for _, lhs := range as.Lhs {
		dst := ff.VarOf(lhs)
		if dst == nil {
			return false
		}
		if v.slice[dst] {
			any = true
		} else if dst.Name() != "_" && dst.Name() != "err" {
			return false // defines something outside the verification
		}
	}
	return any
}

// fillsOrMeasures exempts uses that write into or size the buffer:
// io.ReadFull(r, buf), r.Read(buf), copy(buf, ...), len/cap, append
// with buf as the destination, and buf on the left of an assignment.
func fillsOrMeasures(p *Pass, ff *FuncFlow, use *ast.Ident) bool {
	parent := ff.flow.Parent(use)
	// Unwrap one slice level: io.ReadFull(r, buf[:n]).
	if sl, ok := parent.(*ast.SliceExpr); ok && sl.X == ast.Expr(use) {
		parent = ff.flow.Parent(sl)
	}
	arg := ast.Node(use)
	if sl, ok := ff.flow.Parent(use).(*ast.SliceExpr); ok {
		arg = sl
	}
	call, ok := parent.(*ast.CallExpr)
	if !ok {
		if as, ok := parent.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if ast.Unparen(lhs) == ast.Expr(use) {
					return true
				}
			}
		}
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "append":
				return true
			case "copy":
				// Only the destination (first arg) is a fill; copying
				// *out* of an unverified buffer is a use.
				return len(call.Args) > 0 && call.Args[0] == arg
			}
		}
	}
	fn := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	return name == "ReadFull" || name == "Read" || name == "ReadAt" || name == "ReadAtLeast"
}
