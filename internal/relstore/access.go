package relstore

import (
	"fmt"
	"sort"
)

// AccessPath names how a lookup was satisfied, for plan explanation.
type AccessPath uint8

const (
	// PathClustered is a binary-search range scan on a sorted copy.
	PathClustered AccessPath = iota
	// PathHash is a single-attribute hash index probe.
	PathHash
	// PathScan is a full relation scan with a filter.
	PathScan
)

// String names the access path.
func (p AccessPath) String() string {
	switch p {
	case PathClustered:
		return "clustered"
	case PathHash:
		return "hash"
	default:
		return "scan"
	}
}

// Scan calls fn for every row, charging a sequential read of every page.
// fn must not retain the row; return false to stop early (pages already
// touched remain charged).
func (r *Relation) Scan(fn func(Row) bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	io := IOStats{Scans: 1}
	defer func() {
		if r.store != nil {
			r.store.Stats.add(io)
		}
	}()
	for i, row := range r.rows {
		if i%PageRows == 0 {
			r.touch("", int32(i/PageRows), true, &io)
		}
		io.RowsRead++
		if !fn(row) {
			return
		}
	}
}

// LookupEq returns all rows with row[col] == val, choosing the cheapest
// available access path (clustered copy, hash index, full scan). The
// returned rows are copies.
func (r *Relation) LookupEq(col int, val int64) []Row {
	rows, _ := r.LookupPrefix([]int{col}, []int64{val})
	return rows
}

// LookupPrefix returns all rows matching vals on the column prefix cols,
// reporting the access path used.
func (r *Relation) LookupPrefix(cols []int, vals []int64) ([]Row, AccessPath) {
	if len(cols) != len(vals) || len(cols) == 0 {
		panic(fmt.Sprintf("relstore: %s: LookupPrefix cols/vals mismatch", r.Name))
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	io := IOStats{Lookups: 1}
	defer func() {
		if r.store != nil {
			r.store.Stats.add(io)
		}
	}()

	// Clustered (primary or secondary sorted copy): binary search.
	if hasPrefix(r.clustered, cols) {
		rows := r.rangeScan("", nil, cols, vals, &io)
		return rows, PathClustered
	}
	for key, perm := range r.orderings {
		if hasPrefix(colsFromKey(key), cols) {
			rows := r.rangeScan(key, perm, cols, vals, &io)
			return rows, PathClustered
		}
	}
	// Hash probe (single column only): random page access per match.
	if len(cols) == 1 {
		if idx, ok := r.hashIdx[cols[0]]; ok {
			var rows []Row
			lastPage := int32(-1)
			for _, ri := range idx[vals[0]] {
				if pg := ri / PageRows; pg != lastPage {
					r.touch("", pg, false, &io)
					lastPage = pg
				}
				rows = append(rows, append(Row(nil), r.rows[ri]...))
				io.RowsRead++
			}
			return rows, PathHash
		}
	}
	// Fallback: full scan with filter.
	io.Scans++
	var rows []Row
	for i, row := range r.rows {
		if i%PageRows == 0 {
			r.touch("", int32(i/PageRows), true, &io)
		}
		match := true
		for j, c := range cols {
			if row[c] != vals[j] {
				match = false
				break
			}
		}
		if match {
			rows = append(rows, append(Row(nil), row...))
			io.RowsRead++
		}
	}
	return rows, PathScan
}

// rangeScan binary-searches the sorted view (perm over rows, or the
// primary order when perm is nil) for the range matching vals on cols
// and copies it out, charging one page seek plus the sequential pages of
// the range.
func (r *Relation) rangeScan(ordering string, perm []int32, cols []int, vals []int64, io *IOStats) []Row {
	n := len(r.rows)
	at := func(i int) Row {
		if perm == nil {
			return r.rows[i]
		}
		return r.rows[perm[i]]
	}
	cmp := func(row Row) int {
		for j, c := range cols {
			if row[c] != vals[j] {
				if row[c] < vals[j] {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	lo := sort.Search(n, func(i int) bool { return cmp(at(i)) >= 0 })
	hi := sort.Search(n, func(i int) bool { return cmp(at(i)) > 0 })
	if lo >= hi {
		// Seek still touches one page (the B-tree leaf probed).
		if n > 0 {
			pg := int32(lo)
			if lo >= n {
				pg = int32(n - 1)
			}
			r.touch(ordering, pg/PageRows, false, io)
		}
		return nil
	}
	// A clustered range scan seeks once (random) and then reads the
	// range sequentially.
	var rows []Row
	lastPage := int32(-1)
	first := true
	for i := lo; i < hi; i++ {
		if pg := int32(i) / PageRows; pg != lastPage {
			r.touch(ordering, pg, !first, io)
			first = false
			lastPage = pg
		}
		rows = append(rows, append(Row(nil), at(i)...))
		io.RowsRead++
	}
	return rows
}

// touch records one page access against the store's buffer pool;
// sequential misses are discounted by the disk cost model.
func (r *Relation) touch(ordering string, page int32, sequential bool, io *IOStats) {
	if r.store == nil {
		return
	}
	if r.store.Pool.Access(PageKey{Relation: r.Name, Ordering: ordering, Page: page}) {
		io.PageHits++
		return
	}
	io.PageReads++
	if sequential {
		io.SeqReads++
	}
}
