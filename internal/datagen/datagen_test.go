package datagen

import (
	"testing"
)

func TestTPCHSchemaSelfConsistent(t *testing.T) {
	sg := TPCHSchema()
	if sg.NumNodes() != 18 {
		t.Fatalf("nodes = %d", sg.NumNodes())
	}
	if !sg.IsChoice("line") {
		t.Fatal("line must be a choice node")
	}
	for _, root := range []string{"person", "part", "service_call"} {
		if !sg.Node(root).Root {
			t.Fatalf("%s not root-capable", root)
		}
	}
}

func TestTPCHGeneratorDeterministic(t *testing.T) {
	p := DefaultTPCHParams()
	p.Persons, p.Parts = 10, 8
	a, err := TPCH(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TPCH(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Data.NumNodes() != b.Data.NumNodes() || a.Data.NumEdges() != b.Data.NumEdges() {
		t.Fatalf("nondeterministic generation: %d/%d vs %d/%d nodes/edges",
			a.Data.NumNodes(), a.Data.NumEdges(), b.Data.NumNodes(), b.Data.NumEdges())
	}
	if a.Obj.NumObjects() == 0 || a.Obj.NumEdges() == 0 {
		t.Fatal("empty object graph")
	}
}

func TestTPCHGeneratorConforms(t *testing.T) {
	p := DefaultTPCHParams()
	p.Persons, p.Parts = 12, 10
	ds, err := TPCH(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Data.Validate(); err != nil {
		t.Fatal(err)
	}
	// Objects: persons + parts(top+sub) + orders + lineitems + products.
	wantPersons := 12
	if got := len(ds.Obj.BySegment("person")); got != wantPersons {
		t.Fatalf("persons = %d, want %d", got, wantPersons)
	}
	wantParts := 10 * (1 + p.SubsPerPart)
	if got := len(ds.Obj.BySegment("part")); got != wantParts {
		t.Fatalf("parts = %d, want %d", got, wantParts)
	}
}

func TestDBLPGeneratorShape(t *testing.T) {
	p := DefaultDBLPParams()
	ds, err := DBLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Data.Validate(); err != nil {
		t.Fatal(err)
	}
	// Citation edges exist and average roughly AvgCitations per paper.
	papers := ds.Obj.BySegment("paper")
	cites := 0
	for _, pa := range papers {
		for _, e := range ds.Obj.Out(pa) {
			if ds.Obj.TO(e.To).Segment == "paper" {
				cites++
			}
		}
	}
	avg := float64(cites) / float64(len(papers))
	if avg < float64(p.AvgCitations)/2 || avg > float64(p.AvgCitations)*2 {
		t.Fatalf("avg citations = %.1f, want ≈%d", avg, p.AvgCitations)
	}
}

func TestDBLPRejectsBadBounds(t *testing.T) {
	p := DefaultDBLPParams()
	p.MinAuthors = 0
	if _, err := DBLP(p); err == nil {
		t.Fatal("MinAuthors=0 accepted")
	}
	p = DefaultDBLPParams()
	p.MaxAuthors = p.MinAuthors - 1
	if _, err := DBLP(p); err == nil {
		t.Fatal("Max<Min accepted")
	}
}

func TestTPCHFigure1Fixture(t *testing.T) {
	ds, err := TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Data.Validate(); err != nil {
		t.Fatal(err)
	}
	// The fixture's key facts (relied on by the §1/§2 example tests):
	// 2 persons, 3 lineitems, 3 parts, 1 product, 1 service call.
	counts := map[string]int{}
	for _, id := range ds.Data.Nodes() {
		counts[ds.Data.Node(id).Type]++
	}
	for typ, want := range map[string]int{
		"person": 2, "lineitem": 3, "part": 3, "product": 1, "service_call": 1,
	} {
		if counts[typ] != want {
			t.Errorf("%s nodes = %d, want %d", typ, counts[typ], want)
		}
	}
}

func TestBenchDBLPParamsSane(t *testing.T) {
	p := BenchDBLPParams()
	if p.AvgCitations != 20 {
		t.Fatalf("bench params must match the paper's avg 20 citations, got %d", p.AvgCitations)
	}
	if p.Conferences*p.YearsPerConf*p.PapersPerYear < 1000 {
		t.Fatal("bench dataset too small to be interesting")
	}
}

func TestAuthorNameStable(t *testing.T) {
	if AuthorName(3) != AuthorName(3) {
		t.Fatal("AuthorName not deterministic")
	}
	if AuthorName(0) == AuthorName(1) {
		t.Fatal("adjacent author names collide")
	}
}
