// Package lint is a stdlib-only static-analysis framework that enforces
// the repo's concurrency, context, and key-encoding invariants. It is
// deliberately built on go/parser + go/ast + go/types + go/importer
// alone (no golang.org/x/tools), honoring the repo's stdlib-only rule.
//
// Each Analyzer encodes one invariant that a past PR violated (or
// plausibly could have): see keyjoin.go, ctxflow.go, errdrop.go,
// lockguard.go and nilrecv.go for the individual checks and the bugs
// that motivated them. The cmd/xkvet driver loads every package in the
// module, type-checks it, runs all analyzers, and exits nonzero on any
// finding not suppressed by an explicit
//
//	//xk:ignore <analyzer> <reason>
//
// comment on the offending line or the line directly above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one analyzer hit: a position, the analyzer that fired, and
// a human-readable message.
type Finding struct {
	Pos  token.Position
	Name string
	Msg  string
}

// String renders the driver's canonical `file:line: [name] message`
// form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Name, f.Msg)
}

// Pass is the per-package unit of work handed to each analyzer: the
// parsed files plus the full type information of one type-checked
// package, the package's def-use flow facts (flow.go), and the
// module-wide call graph accumulated so far (callgraph.go; packages
// are checked in dependency order, so the graph always covers every
// function this package can statically reach).
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Flow  *Flow
	Graph *CallGraph

	name   string
	report func(Finding)
}

// Reportf records a finding of the running analyzer at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:  p.Fset.Position(pos),
		Name: p.name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant shorthand for p.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string // short lower-case name used in findings and ignore directives
	Doc  string // one-line description of the invariant
	Run  func(*Pass)
}

// Analyzers returns the full registry, sorted by name. The set is fixed
// at compile time; the xkvet -analyzers flag selects a subset.
func Analyzers() []*Analyzer {
	as := []*Analyzer{
		analyzerKeyjoin,
		analyzerCtxflow,
		analyzerErrdrop,
		analyzerLockguard,
		analyzerNilrecv,
		analyzerRetryloop,
		analyzerMaporder,
		analyzerAtomiccommit,
		analyzerCrcgate,
		analyzerGoleak,
		analyzerKeyfields,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// KnownNames returns every registered analyzer name (used to validate
// ignore directives even when only a subset of analyzers runs).
func KnownNames() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}

// runAnalyzers executes each analyzer over one package and returns the
// raw (unfiltered) findings, sorted by position. The flow facts are
// built once here and shared by every analyzer.
func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, graph *CallGraph, analyzers []*Analyzer) []Finding {
	var out []Finding
	pass := &Pass{
		Fset:   fset,
		Files:  files,
		Pkg:    pkg,
		Info:   info,
		Flow:   buildFlow(files, info),
		Graph:  graph,
		report: func(f Finding) { out = append(out, f) },
	}
	for _, a := range analyzers {
		pass.name = a.Name
		a.Run(pass)
	}
	sortFindings(out)
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Msg < b.Msg
	})
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// calleeFunc resolves the *types.Func a call statically dispatches to,
// or nil for calls through function values, builtins, and conversions.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	return staticCallee(p.Info, call)
}
