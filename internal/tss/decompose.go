package tss

import (
	"fmt"
	"sort"

	"repro/internal/schema"
	"repro/internal/xmlgraph"
)

// TargetObject is one target object instance: the piece of XML data a
// segment designates, identified by the id of its head node.
type TargetObject struct {
	ID      int64 // head node id, used as TO id throughout the system
	Segment string
	Nodes   []xmlgraph.NodeID // member nodes, head first
}

// ObjectEdge connects two target objects through one TSS edge instance.
type ObjectEdge struct {
	From, To int64
	EdgeID   int // index into Graph.Edges()
}

// ObjectGraph is the representation of the XML graph in terms of target
// objects (paper §5): nodes are target objects, edges are instances of
// TSS edges. Connection relations are populated from it.
type ObjectGraph struct {
	TSS    *Graph
	Data   *xmlgraph.Graph
	tos    map[int64]*TargetObject
	order  []int64
	nodeTO map[xmlgraph.NodeID]int64
	out    map[int64][]ObjectEdge
	in     map[int64][]ObjectEdge
	bySeg  map[string][]int64
}

// Decompose computes the target decomposition of a typed data graph: it
// groups XML nodes into target objects and materializes the TSS-edge
// instances connecting them (contracting dummy nodes).
func (g *Graph) Decompose(data *xmlgraph.Graph) (*ObjectGraph, error) {
	og := &ObjectGraph{
		TSS:    g,
		Data:   data,
		tos:    make(map[int64]*TargetObject),
		nodeTO: make(map[xmlgraph.NodeID]int64),
		out:    make(map[int64][]ObjectEdge),
		in:     make(map[int64][]ObjectEdge),
		bySeg:  make(map[string][]int64),
	}
	// Pass 1: create a TO for every head node.
	for _, id := range data.Nodes() {
		n := data.Node(id)
		if n.Type == "" {
			return nil, fmt.Errorf("tss: node %d has no schema type; run schema.Assign first", id)
		}
		if seg, ok := g.headOf[n.Type]; ok {
			to := &TargetObject{ID: int64(id), Segment: seg, Nodes: []xmlgraph.NodeID{id}}
			og.tos[to.ID] = to
			og.order = append(og.order, to.ID)
			og.nodeTO[id] = to.ID
			og.bySeg[seg] = append(og.bySeg[seg], to.ID)
		}
	}
	// Pass 2: attach non-head members to the TO of their nearest
	// containment ancestor that is the segment head.
	for _, id := range data.Nodes() {
		n := data.Node(id)
		seg := g.bySchema[n.Type]
		if seg == "" || g.segments[seg].Head == n.Type {
			continue
		}
		cur := id
		for {
			p, ok := data.ContainmentParent(cur)
			if !ok {
				return nil, fmt.Errorf("tss: member node %d (%s) has no %s-head ancestor", id, n.Type, seg)
			}
			if toID, isTO := og.nodeTO[p]; isTO && og.tos[toID].Segment == seg {
				og.tos[toID].Nodes = append(og.tos[toID].Nodes, id)
				og.nodeTO[id] = toID
				break
			}
			cur = p
		}
	}
	// Pass 3: materialize TSS edge instances by matching each edge's
	// schema path against the data graph.
	seen := make(map[[3]int64]bool)
	for _, e := range g.edges {
		start := e.SchemaPath[0].From
		for _, id := range data.Nodes() {
			if data.Node(id).Type != start {
				continue
			}
			for _, end := range og.matchPath(id, e.SchemaPath) {
				fromTO, ok1 := og.nodeTO[id]
				toTO, ok2 := og.nodeTO[end]
				if !ok1 || !ok2 {
					continue
				}
				key := [3]int64{fromTO, toTO, int64(e.ID)}
				if seen[key] {
					continue
				}
				seen[key] = true
				oe := ObjectEdge{From: fromTO, To: toTO, EdgeID: e.ID}
				og.out[fromTO] = append(og.out[fromTO], oe)
				og.in[toTO] = append(og.in[toTO], oe)
			}
		}
	}
	return og, nil
}

// matchPath returns the ids of all data nodes reachable from start by a
// data path matching the schema path (edge kinds and node types).
func (og *ObjectGraph) matchPath(start xmlgraph.NodeID, path []schema.Edge) []xmlgraph.NodeID {
	frontier := []xmlgraph.NodeID{start}
	for _, se := range path {
		var next []xmlgraph.NodeID
		for _, id := range frontier {
			for _, de := range og.Data.Out(id) {
				if de.Kind == se.Kind && og.Data.Node(de.To).Type == se.To {
					next = append(next, de.To)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			return nil
		}
	}
	return frontier
}

// TO returns the target object with the given id, or nil.
func (og *ObjectGraph) TO(id int64) *TargetObject { return og.tos[id] }

// TOOf returns the target object containing data node id, if any (dummy
// nodes belong to no target object).
func (og *ObjectGraph) TOOf(id xmlgraph.NodeID) (int64, bool) {
	to, ok := og.nodeTO[id]
	return to, ok
}

// NumObjects returns the number of target objects.
func (og *ObjectGraph) NumObjects() int { return len(og.tos) }

// Objects returns all TO ids in creation order.
func (og *ObjectGraph) Objects() []int64 {
	out := make([]int64, len(og.order))
	copy(out, og.order)
	return out
}

// BySegment returns the TO ids of a segment, sorted ascending.
func (og *ObjectGraph) BySegment(seg string) []int64 {
	ids := append([]int64(nil), og.bySeg[seg]...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Out returns the object edges leaving to.
func (og *ObjectGraph) Out(to int64) []ObjectEdge { return og.out[to] }

// In returns the object edges entering to.
func (og *ObjectGraph) In(to int64) []ObjectEdge { return og.in[to] }

// NumEdges returns the number of object edges.
func (og *ObjectGraph) NumEdges() int {
	n := 0
	for _, es := range og.out {
		n += len(es)
	}
	return n
}

// Neighbors returns all object edges incident to id (both directions).
func (og *ObjectGraph) Neighbors(id int64) []ObjectEdge {
	out := append([]ObjectEdge(nil), og.out[id]...)
	return append(out, og.in[id]...)
}
