// Package qserve is the query-serving layer in front of the XKeyword
// engine: the piece a production deployment needs between HTTP handlers
// and the §4–§6 pipeline (CN generation, planning, join execution),
// which the paper re-runs from scratch on every query. It provides
//
//   - a sharded LRU result cache with TTL and byte-budget eviction,
//     keyed on the normalized keyword bag plus the result-shaping
//     parameters, so "Codd relational" and "Relational CODD" share an
//     entry;
//   - singleflight collapse: N concurrent identical queries run the
//     pipeline once and share the result;
//   - admission control: a bounded semaphore with a queue-wait deadline
//     that sheds load with ErrOverloaded instead of piling up
//     goroutines;
//   - end-to-end context cancellation: a disconnected client stops the
//     in-flight join loops (via exec's cooperative checks), and an
//     abandoned collapsed flight is cancelled when its last waiter
//     leaves;
//   - a Stats snapshot with hit/miss/collapse/shed/eviction counters
//     and p50/p95 serve latency from a fixed-bucket histogram.
//
// Everything is standard library only, like the rest of the repo.
package qserve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/exec"
	"repro/internal/pipeline"
	"repro/internal/rank"
)

// ErrOverloaded is returned when admission control sheds a query: every
// execution slot stayed busy for the whole queue-wait deadline. Callers
// should map it to a retryable status (HTTP 503).
var ErrOverloaded = errors.New("qserve: overloaded: no execution slot within queue-wait deadline")

// Engine is the query pipeline qserve fronts. *core.System implements
// it; tests substitute slow or blocking fakes.
type Engine interface {
	QueryContext(ctx context.Context, keywords []string, k int) ([]exec.Result, error)
	QueryAllStrategyContext(ctx context.Context, keywords []string, strat exec.Strategy) ([]exec.Result, error)
}

// ScoredEngine is the extended engine surface: pluggable result scorers
// and no-match relaxation. *core.System and the shard coordinator
// implement it; QueryScored routes through it whenever the wrapped
// engine does (even for the default scorer, so relaxation records
// flow), and plain Engines keep working for the default scorer only.
type ScoredEngine interface {
	Engine
	QueryScoredContext(ctx context.Context, keywords []string, k int, scorer string) ([]exec.Result, *pipeline.Relaxation, error)
}

// Annotations are the loud qualifications of an answer: non-nil
// Degraded when it was computed without part of the index (a dead
// shard), non-nil Relaxed when the query was rewritten to be
// answerable. Degraded answers are never cached; relaxed answers are
// (relaxation is a deterministic function of the index), and the cache
// returns the record with every hit.
type Annotations struct {
	Degraded *Degradation         `json:"degraded,omitempty"`
	Relaxed  *pipeline.Relaxation `json:"relaxed,omitempty"`
}

// degradation unwraps the degradation note of possibly-nil annotations.
func (a *Annotations) degradation() *Degradation {
	if a == nil {
		return nil
	}
	return a.Degraded
}

// Options configure a Server. The zero value selects the defaults.
type Options struct {
	// Shards is the number of cache shards (default 8).
	Shards int
	// MaxEntries bounds the total cached queries (default 4096).
	// Negative disables the result cache entirely.
	MaxEntries int
	// MaxBytes bounds the approximate result bytes held by the cache
	// (default 64 MiB).
	MaxBytes int64
	// TTL is the entry lifetime (default 5 minutes). Negative means no
	// expiry.
	TTL time.Duration
	// MaxConcurrent bounds in-flight pipeline executions (default
	// 2×GOMAXPROCS).
	MaxConcurrent int
	// QueueWait is how long an admission waits for a slot before the
	// query is shed with ErrOverloaded (default 100ms).
	QueueWait time.Duration
	// BreakerWindow is the initial fast-fail window opened after a shed:
	// while it is open, admissions that would have to queue are rejected
	// immediately instead of burning the full queue wait first. Default
	// QueueWait; negative disables the breaker.
	BreakerWindow time.Duration
	// BreakerMax caps the exponential growth of consecutive fast-fail
	// windows (default 5s).
	BreakerMax time.Duration
	// Logf receives the serving layer's rare operational messages (first
	// index failure, degradation). Default log.Printf.
	Logf func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.MaxEntries == 0 {
		o.MaxEntries = 4096
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = 64 << 20
	}
	if o.TTL == 0 {
		o.TTL = 5 * time.Minute
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if o.QueueWait == 0 {
		o.QueueWait = 100 * time.Millisecond
	}
	if o.BreakerWindow == 0 {
		o.BreakerWindow = o.QueueWait
	}
	if o.BreakerMax == 0 {
		o.BreakerMax = 5 * time.Second
	}
}

// Server serves keyword queries through the cache, the singleflight
// group and the admission semaphore. Safe for concurrent use.
type Server struct {
	eng   Engine
	opts  Options
	cache *resultCache // nil when caching is disabled
	group flightGroup
	sem   chan struct{}
	stats serverStats
	breakerState
}

// New wraps an engine (usually a *core.System) in a serving layer.
func New(eng Engine, opts Options) *Server {
	opts.defaults()
	s := &Server{
		eng:  eng,
		opts: opts,
		sem:  make(chan struct{}, opts.MaxConcurrent),
	}
	if opts.MaxEntries > 0 {
		s.cache = newResultCache(opts.Shards, opts.MaxEntries, opts.MaxBytes, opts.TTL)
	}
	return s
}

// Engine returns the wrapped engine, so surfaces in front of the
// serving layer (the web demo's /debug/shard) can reach engine-specific
// debug state the Server does not model.
func (s *Server) Engine() Engine { return s.eng }

// Query answers the top-k query through the serving layer.
func (s *Server) Query(ctx context.Context, keywords []string, k int) ([]exec.Result, error) {
	rs, _, err := s.QueryAnnotated(ctx, keywords, k)
	return rs, err
}

// QueryAnnotated is Query returning the engine's degradation note
// alongside the results: non-nil when the answer was computed without
// part of the index (a dead shard's partition). Degraded answers are
// never cached, so a cache hit is always complete (nil note).
func (s *Server) QueryAnnotated(ctx context.Context, keywords []string, k int) ([]exec.Result, *Degradation, error) {
	rs, ann, err := s.QueryScored(ctx, keywords, k, "")
	return rs, ann.degradation(), err
}

// QueryScored answers the top-k query ranked by the named scorer (""
// selects the engine's default) with the full annotations. Engines
// implementing ScoredEngine serve every scorer and report relaxation;
// a plain Engine serves the default scorer only.
func (s *Server) QueryScored(ctx context.Context, keywords []string, k int, scorer string) ([]exec.Result, *Annotations, error) {
	if se, ok := s.eng.(ScoredEngine); ok {
		return s.serve(ctx, "topk", keywords, k, exec.NestedLoop, scorer, func(fctx context.Context) ([]exec.Result, *pipeline.Relaxation, error) {
			return se.QueryScoredContext(fctx, keywords, k, scorer)
		})
	}
	if scorer != "" && scorer != rank.DefaultName {
		return nil, nil, fmt.Errorf("qserve: engine %T does not support scorer selection (want %q)", s.eng, scorer)
	}
	return s.serve(ctx, "topk", keywords, k, exec.NestedLoop, scorer, func(fctx context.Context) ([]exec.Result, *pipeline.Relaxation, error) {
		rs, err := s.eng.QueryContext(fctx, keywords, k)
		return rs, nil, err
	})
}

// QueryAll answers the full-result query through the serving layer,
// using the engine's automatic strategy.
func (s *Server) QueryAll(ctx context.Context, keywords []string) ([]exec.Result, error) {
	return s.QueryAllStrategy(ctx, keywords, exec.AutoStrategy)
}

// QueryAllStrategy is QueryAll with an explicit evaluation strategy.
func (s *Server) QueryAllStrategy(ctx context.Context, keywords []string, strat exec.Strategy) ([]exec.Result, error) {
	rs, _, err := s.QueryAllAnnotated(ctx, keywords, strat)
	return rs, err
}

// QueryAllAnnotated is QueryAllStrategy returning the degradation note.
func (s *Server) QueryAllAnnotated(ctx context.Context, keywords []string, strat exec.Strategy) ([]exec.Result, *Degradation, error) {
	rs, ann, err := s.serve(ctx, "all", keywords, 0, strat, "", func(fctx context.Context) ([]exec.Result, *pipeline.Relaxation, error) {
		rs, err := s.eng.QueryAllStrategyContext(fctx, keywords, strat)
		return rs, nil, err
	})
	return rs, ann.degradation(), err
}

// InvalidateCache drops every cached result. The ingest path calls it
// after a write batch whose token footprint it cannot name (deletes: the
// dead TO's tokens are not in the request): the index has changed, so
// any cached answer may be stale. A no-op when caching is disabled.
func (s *Server) InvalidateCache() {
	if s.cache == nil {
		return
	}
	s.cache.clear()
	s.stats.invalidations.Add(1)
}

// InvalidateCacheTokens drops only the cached queries whose normalized
// keyword bag intersects tokens — the scoped form of InvalidateCache for
// ingests whose token footprint is known (upserts carry their content).
// A query mentioning none of the ingested tokens cannot see the new
// document in any result, so its cached answer is still exact.
//
// Note the scope is by token, not by shard: a shard owns a hash slice of
// target objects, but one cached result is a *tree* of TOs that can span
// every shard, so "invalidate the ingesting shard's routed keys" is not
// a sound scope — any cached key could be affected. Tokens are the
// finest sound scope the cache key supports.
//
// An empty token list invalidates nothing (an empty upsert batch touched
// no index entry).
func (s *Server) InvalidateCacheTokens(tokens []string) {
	if s.cache == nil || len(tokens) == 0 {
		return
	}
	set := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		set[t] = true
	}
	if s.cache.invalidateMatching(func(key string) bool { return keyMentionsToken(key, set) }) > 0 {
		s.stats.invalidations.Add(1)
	}
}

// serve is the common path: normalize the key, consult the cache, and
// collapse concurrent misses into one admitted pipeline execution. The
// degradation slot is installed here — inside the flight — because the
// flight runs on the serving layer's detached context: a slot installed
// by the HTTP handler would never reach a collapsed execution.
func (s *Server) serve(ctx context.Context, kind string, keywords []string, k int, strat exec.Strategy, scorer string, run func(context.Context) ([]exec.Result, *pipeline.Relaxation, error)) ([]exec.Result, *Annotations, error) {
	start := time.Now()
	key, err := cacheKey(kind, keywords, k, strat, scorer)
	if err != nil {
		return nil, nil, err
	}
	if s.cache != nil {
		if rs, meta, ok := s.cache.get(key); ok {
			s.stats.hits.Add(1)
			s.stats.latency.observe(time.Since(start))
			var ann *Annotations
			if rx, _ := meta.(*pipeline.Relaxation); rx != nil {
				// The hit is a relaxed answer: the record cached with it
				// keeps the annotation as loud as the original miss.
				ann = &Annotations{Relaxed: rx}
			}
			return rs, ann, nil
		}
	}
	rs, ann, joined, err := s.group.do(ctx, key, func(fctx context.Context) ([]exec.Result, *Annotations, error) {
		if err := s.admit(fctx); err != nil {
			return nil, nil, err
		}
		defer s.release()
		fctx, slot := withDegradationSlot(fctx)
		rs, rx, err := run(fctx)
		if err != nil {
			return nil, nil, err
		}
		deg := slot.take()
		if deg != nil {
			// A degraded answer reflects the shard outage, not the index:
			// caching it would keep serving the partial answer after the
			// shard recovers. (A relaxed answer, by contrast, is exactly
			// what the index says for the rewritten query — cacheable,
			// with its record stored alongside.)
			s.stats.degraded.Add(1)
		} else if s.cache != nil {
			var meta any
			if rx != nil {
				meta = rx
			}
			s.stats.evictions.Add(s.cache.put(key, rs, meta))
		}
		if rx != nil {
			s.stats.relaxed.Add(1)
		}
		if deg == nil && rx == nil {
			return rs, nil, nil
		}
		return rs, &Annotations{Degraded: deg, Relaxed: rx}, nil
	})
	switch {
	case err == nil:
		s.stats.misses.Add(1)
		if joined {
			s.stats.collapses.Add(1)
		}
		s.stats.latency.observe(time.Since(start))
	case errors.Is(err, ErrOverloaded):
		s.stats.sheds.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.stats.cancels.Add(1)
	default:
		s.stats.errors.Add(1)
	}
	return rs, ann, err
}

// admit acquires an execution slot, waiting at most QueueWait. It
// returns ErrOverloaded when every slot stays busy for the whole wait,
// or ctx's error if the caller goes away while queued. While the
// breaker's fast-fail window (opened by a previous shed) is running,
// admissions that would have to queue are rejected without waiting.
func (s *Server) admit(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		s.closeBreaker()
		return nil
	default:
	}
	if s.opts.BreakerWindow > 0 && s.breakerOpen() {
		return ErrOverloaded
	}
	s.waiters.Add(1)
	defer s.waiters.Add(-1)
	timer := time.NewTimer(s.opts.QueueWait)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		s.closeBreaker()
		return nil
	case <-timer.C:
		if s.opts.BreakerWindow > 0 {
			s.tripBreaker()
		}
		return ErrOverloaded
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// InFlight reports the currently admitted pipeline executions.
func (s *Server) InFlight() int { return len(s.sem) }
