package datagen

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"math/rand"
)

// CitationParams sizes a synthetic citation-network dump: papers with
// titles and years, authors, venues, and typed links between them. The
// output is an edge-list (CSV) workload — the generic-source path's
// counterpart to the XML DBLP generator — exercised by cmd/xkgen
// -schema citation and the internal/edgelist tests and benchmarks.
type CitationParams struct {
	Papers     int
	Authors    int
	Venues     int
	AvgCites   int // citations per paper, uniform in [0, 2*AvgCites]
	MaxAuthors int // authors per paper, uniform in [1, MaxAuthors]
	Seed       int64
}

// DefaultCitationParams returns the configuration used by the unit
// tests and the committed experiment table: small enough to be fast,
// dense enough for multi-hop proximity results.
func DefaultCitationParams() CitationParams {
	return CitationParams{
		Papers:     120,
		Authors:    40,
		Venues:     8,
		AvgCites:   4,
		MaxAuthors: 3,
		Seed:       1,
	}
}

// BenchCitationParams returns the larger configuration used by the
// graph-source benchmark harness.
func BenchCitationParams() CitationParams {
	return CitationParams{
		Papers:     2000,
		Authors:    400,
		Venues:     8,
		AvgCites:   8,
		MaxAuthors: 4,
		Seed:       7,
	}
}

// CitationCSV generates the citation network as an edge-list dump:
// a nodes file (header id,type,title,year,name — papers fill
// title/year, authors and venues fill name) and an edges file (header
// from,to,label with labels cites, written_by and published_in). Both
// are ready for edgelist.Parse. Deterministic for a given seed.
func CitationCSV(p CitationParams) (nodes, edges []byte, err error) {
	if p.Papers < 1 || p.Authors < 1 || p.Venues < 1 {
		return nil, nil, fmt.Errorf("datagen: citation needs at least one paper, author and venue (got %d/%d/%d)", p.Papers, p.Authors, p.Venues)
	}
	if p.MaxAuthors < 1 {
		return nil, nil, fmt.Errorf("datagen: citation MaxAuthors must be >= 1 (got %d)", p.MaxAuthors)
	}
	rng := rand.New(rand.NewSource(p.Seed))

	var nbuf, ebuf bytes.Buffer
	nw := csv.NewWriter(&nbuf)
	ew := csv.NewWriter(&ebuf)
	write := func(w *csv.Writer, rec ...string) {
		if err == nil {
			err = w.Write(rec)
		}
	}
	write(nw, "id", "type", "title", "year", "name")
	write(ew, "from", "to", "label")

	for i := 0; i < p.Authors; i++ {
		write(nw, fmt.Sprintf("a%d", i), "author", "", "", AuthorName(i))
	}
	for i := 0; i < p.Venues; i++ {
		write(nw, fmt.Sprintf("v%d", i), "venue", "", "", confNames[i%len(confNames)])
	}
	for i := 0; i < p.Papers; i++ {
		id := fmt.Sprintf("p%d", i)
		write(nw, id, "paper", title(rng), fmt.Sprint(1993+rng.Intn(10)), "")
		n := 1 + rng.Intn(p.MaxAuthors)
		perm := rng.Perm(p.Authors)
		for k := 0; k < n && k < len(perm); k++ {
			write(ew, id, fmt.Sprintf("a%d", perm[k]), "written_by")
		}
		write(ew, id, fmt.Sprintf("v%d", rng.Intn(p.Venues)), "published_in")
	}
	// Citations go last so every endpoint id already exists above; the
	// uniform [0, 2*AvgCites] draw mirrors the DBLP generator.
	for i := 0; i < p.Papers; i++ {
		n := 0
		if p.AvgCites > 0 {
			n = rng.Intn(2*p.AvgCites + 1)
		}
		for k := 0; k < n; k++ {
			target := rng.Intn(p.Papers)
			if target == i {
				continue
			}
			write(ew, fmt.Sprintf("p%d", i), fmt.Sprintf("p%d", target), "cites")
		}
	}
	nw.Flush()
	ew.Flush()
	if err == nil {
		err = nw.Error()
	}
	if err == nil {
		err = ew.Error()
	}
	if err != nil {
		return nil, nil, fmt.Errorf("datagen: writing citation csv: %w", err)
	}
	return nbuf.Bytes(), ebuf.Bytes(), nil
}
