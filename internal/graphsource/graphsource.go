// Package graphsource is the source-agnostic ingestion boundary: a
// Source describes any typed data graph — nodes, typed edges, text
// content, and the schema/segmentation hints the TSS machinery needs —
// and Load runs the unchanged XKeyword load stage (schema conformance,
// TSS derivation, target decomposition, master index, connection
// relations) over it. The paper's pipeline is not XML-specific; this
// interface is where that stops being theoretical: internal/xmlgraph
// datasets come in through the XML adapter, generic relational/edge-list
// dumps through internal/edgelist, and both feed tss.Decompose → kwindex
// → pipeline identically.
package graphsource

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tss"
	"repro/internal/xmlgraph"
)

// Source is a loadable data graph. The four parts are exactly what
// core.Load consumes: the schema hints (node types and typed edges),
// the target-segment spec (which types head segments, which are
// members, how cross-segment paths are presented), and the data graph
// itself (every text value lives on a node, every relationship is a
// Containment or Reference edge).
//
// Implementations may build the graph lazily in Data (e.g. parse a
// file), but each method must return the same value on every call: the
// load stage reads them once, tests read them repeatedly.
type Source interface {
	// DatasetName names the source for logs and errors ("dblp",
	// "edgelist:papers.csv").
	DatasetName() string
	// SchemaGraph returns the schema: node types and typed edges.
	SchemaGraph() (*schema.Graph, error)
	// Spec returns the target-segment spec over those types.
	Spec() (tss.Spec, error)
	// Data materializes the typed data graph.
	Data() (*xmlgraph.Graph, error)
}

// XML adapts an in-memory xmlgraph dataset (the repo's native shape —
// datagen output, xmlgraph.Parse output) to the Source interface.
type XML struct {
	Name    string
	Schema  *schema.Graph
	SpecVal tss.Spec
	DataVal *xmlgraph.Graph
}

var _ Source = (*XML)(nil)

// FromXML wraps an xmlgraph dataset as a Source.
func FromXML(name string, sg *schema.Graph, spec tss.Spec, data *xmlgraph.Graph) *XML {
	return &XML{Name: name, Schema: sg, SpecVal: spec, DataVal: data}
}

// DatasetName implements Source.
func (x *XML) DatasetName() string { return x.Name }

// SchemaGraph implements Source.
func (x *XML) SchemaGraph() (*schema.Graph, error) {
	if x.Schema == nil {
		return nil, fmt.Errorf("graphsource: %s has no schema", x.Name)
	}
	return x.Schema, nil
}

// Spec implements Source.
func (x *XML) Spec() (tss.Spec, error) { return x.SpecVal, nil }

// Data implements Source.
func (x *XML) Data() (*xmlgraph.Graph, error) {
	if x.DataVal == nil {
		return nil, fmt.Errorf("graphsource: %s has no data graph", x.Name)
	}
	return x.DataVal, nil
}

// Prepare runs the structural half of the load stage — conformance/type
// assignment, TSS derivation, target decomposition — without building a
// System, for callers that share the graphs across several systems.
func Prepare(src Source) (*core.Prepared, error) {
	sg, err := src.SchemaGraph()
	if err != nil {
		return nil, fmt.Errorf("graphsource: %s: %w", src.DatasetName(), err)
	}
	spec, err := src.Spec()
	if err != nil {
		return nil, fmt.Errorf("graphsource: %s: %w", src.DatasetName(), err)
	}
	data, err := src.Data()
	if err != nil {
		return nil, fmt.Errorf("graphsource: %s: %w", src.DatasetName(), err)
	}
	if err := sg.Assign(data); err != nil {
		return nil, fmt.Errorf("graphsource: %s: %w", src.DatasetName(), err)
	}
	tg, err := tss.Derive(sg, spec)
	if err != nil {
		return nil, fmt.Errorf("graphsource: %s: %w", src.DatasetName(), err)
	}
	og, err := tg.Decompose(data)
	if err != nil {
		return nil, fmt.Errorf("graphsource: %s: %w", src.DatasetName(), err)
	}
	return &core.Prepared{Schema: sg, TSS: tg, Data: data, Obj: og}, nil
}

// Load runs the full load stage over a source and returns a ready
// System — the source-agnostic face of core.Load.
func Load(src Source, opts core.Options) (*core.System, error) {
	p, err := Prepare(src)
	if err != nil {
		return nil, err
	}
	return core.LoadPrepared(p, opts)
}
