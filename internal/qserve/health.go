package qserve

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Health is the serving layer's overall state, shaped for /healthz.
type Health string

const (
	// HealthOK: index healthy, admission open.
	HealthOK Health = "ok"
	// HealthDegraded: answers are still correct but something is wrong —
	// the index failed over to its in-memory fallback, or the admission
	// breaker is open and load is being shed.
	HealthDegraded Health = "degraded"
	// HealthUnavailable: the index backend has failed with no fallback;
	// its empty results must not be served as answers.
	HealthUnavailable Health = "unavailable"
)

// healthSource is the optional engine interface behind Health and the
// index fields of Snapshot; *core.System implements it, and so does the
// scatter-gather coordinator (folding per-shard states with a quorum
// rule: unavailable only when fewer than a quorum of shards answer).
type healthSource interface {
	IndexHealthState() (core.IndexHealth, error)
}

// ShardState is one shard's health as the coordinator sees it, shaped
// for /healthz and /debug/qserve.
type ShardState struct {
	ID    int    `json:"id"`
	Addr  string `json:"addr"`
	State string `json:"state"` // ok | degraded | unavailable
	// Detail explains a non-ok state (connection error, failover cause).
	Detail string `json:"detail,omitempty"`
	// P50Millis/P99Millis are the coordinator-observed request latency
	// quantiles for this shard.
	P50Millis int64 `json:"p50_ms"`
	P99Millis int64 `json:"p99_ms"`
	// Replicas is the per-replica breakdown, always present for
	// coordinator-served shards (a single-replica group reports one
	// entry — the only place its breaker state is visible). The group's
	// State/Addr above reflect its healthiest replica; this list shows
	// which sibling is sick and why. Empty only for non-coordinator
	// engines that never populate it.
	Replicas []ReplicaState `json:"replicas,omitempty"`
}

// ReplicaState is one replica's health within a shard group, shaped for
// /healthz: address, breaker state and the last error the coordinator
// recorded against it.
type ReplicaState struct {
	Replica int    `json:"replica"`
	Addr    string `json:"addr"`
	State   string `json:"state"` // ok | degraded | unavailable
	Detail  string `json:"detail,omitempty"`
	// Breaker is the replica's circuit-breaker state: closed | open | half-open.
	Breaker string `json:"breaker"`
	// LastErr is the most recent failure recorded against the replica, ""
	// after a success.
	LastErr   string `json:"last_err,omitempty"`
	P50Millis int64  `json:"p50_ms"`
	P99Millis int64  `json:"p99_ms"`
}

// shardStateSource is the optional engine interface a scatter-gather
// coordinator implements to expose per-shard health.
type shardStateSource interface {
	ShardStates() []ShardState
}

// ShardStates returns the engine's per-shard health when the engine is a
// scatter-gather coordinator, nil otherwise.
func (s *Server) ShardStates() []ShardState {
	if src, ok := s.eng.(shardStateSource); ok {
		return src.ShardStates()
	}
	return nil
}

// Health folds the index backend's state with serving-side admission
// pressure. The detail string explains any non-ok state.
func (s *Server) Health() (Health, string) {
	if hs, ok := s.eng.(healthSource); ok {
		state, err := hs.IndexHealthState()
		s.noteIndexErr(err)
		switch state {
		case core.IndexUnavailable:
			return HealthUnavailable, fmt.Sprintf("index backend failed with no fallback: %v", err)
		case core.IndexDegraded:
			return HealthDegraded, fmt.Sprintf("index serving from in-memory fallback: %v", err)
		}
	}
	if s.breakerOpen() {
		return HealthDegraded, fmt.Sprintf("admission breaker open; shedding load for %v", s.breakerRemaining().Round(time.Millisecond))
	}
	return HealthOK, ""
}

// noteIndexErr logs the index backend's first recorded failure exactly
// once, so a soft-failing reader (whose lookups return empty results
// rather than errors) cannot fail without a trace in the serving log.
func (s *Server) noteIndexErr(err error) {
	if err == nil || s.indexErrLogged.Load() {
		return
	}
	if s.indexErrLogged.CompareAndSwap(false, true) {
		s.logf("qserve: index backend reported failure: %v", err)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// breakerOpen reports whether admissions are currently fast-failing.
func (s *Server) breakerOpen() bool {
	return s.breakerRemaining() > 0
}

func (s *Server) breakerRemaining() time.Duration {
	until := s.breakerUntil.Load()
	if until == 0 {
		return 0
	}
	rem := time.Duration(until - time.Now().UnixNano())
	if rem < 0 {
		return 0
	}
	return rem
}

// tripBreaker opens (or re-opens) the fast-fail window after a shed.
// Consecutive trips grow the window exponentially up to BreakerMax, so
// a persistently saturated server converges to cheap rejections instead
// of making every client pay the full queue wait before its 503.
func (s *Server) tripBreaker() {
	win := s.breakerWin.Load()
	if win == 0 {
		win = int64(s.opts.BreakerWindow)
	} else {
		win *= 2
		if max := int64(s.opts.BreakerMax); win > max {
			win = max
		}
	}
	s.breakerWin.Store(win)
	s.breakerUntil.Store(time.Now().UnixNano() + win)
	s.stats.breakerTrips.Add(1)
}

// closeBreaker resets the fast-fail state after a successful admission:
// a free slot is proof the overload has passed.
func (s *Server) closeBreaker() {
	if s.breakerUntil.Load() != 0 {
		s.breakerUntil.Store(0)
		s.breakerWin.Store(0)
	}
}

// RetryAfter estimates how long a just-shed client should wait before
// retrying: at least the remaining breaker window, scaled up by queue
// pressure (waiters per execution slot), so the hint backs off as the
// overload deepens rather than inviting a synchronized retry storm.
func (s *Server) RetryAfter() time.Duration {
	d := s.opts.QueueWait
	if rem := s.breakerRemaining(); rem > d {
		d = rem
	}
	if w := s.waiters.Load(); w > 0 {
		d += time.Duration(w) * s.opts.QueueWait / time.Duration(s.opts.MaxConcurrent)
	}
	return d
}

// breakerState bundles the admission-breaker atomics (on Server).
type breakerState struct {
	breakerUntil   atomic.Int64 // unix nanos; 0 or past = closed
	breakerWin     atomic.Int64 // current window length, nanos
	waiters        atomic.Int64 // admissions blocked in the queue wait
	indexErrLogged atomic.Bool
}
