package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/kwindex"
	"repro/internal/pipeline"
	"repro/internal/qserve"
)

// Server is the shard-side of the wire protocol: one partition's index
// slice plus the replicated structural data, behind /shard/lookup,
// /shard/execute and /shard/stats. A shard replica deliberately does
// NOT serve the ordinary query API: a query answered from one partition
// alone would be silently partial, which the repo's serving invariant
// forbids — shard replicas answer only protocol requests (and /healthz).
type Server struct {
	// Sys holds the replicated structural data (schema, TSS, connection
	// store, decomposition); its own Index field is not consulted.
	Sys *core.System
	// Local is the shard's partition source — typically a
	// kwindex.Failover over the partition's diskindex reader with a
	// rebuild-from-memory fallback.
	Local kwindex.Source
	// ID and N identify the partition; CRC is the manifest-recorded
	// partition file checksum, echoed in stats so a coordinator can spot
	// a shard serving the wrong split.
	ID, N int
	CRC   uint32
	// Cache, when non-nil, memoizes /shard/execute responses by request
	// identity (see execCacheKey), so a coordinator retrying a query —
	// or several coordinators asking the same hot question — does not
	// re-run the join pipeline per request. nil disables caching.
	Cache *qserve.ResultCache

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

// Handler returns the shard's HTTP mux: the three protocol endpoints
// plus /healthz (shaped like webdemo's: 503 only when the partition
// index is unavailable).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/shard/lookup", s.handleLookup)
	mux.HandleFunc("/shard/execute", s.handleExecute)
	mux.HandleFunc("/shard/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/shardcache", s.handleCacheStats)
	return mux
}

func (s *Server) health() (state string, detail string) {
	h, err := core.SourceHealth(s.Local)
	if err != nil {
		return string(h), err.Error()
	}
	return string(h), ""
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	var req LookupRequest
	if !readJSON(w, r, &req) {
		return
	}
	lists := make(map[string][]kwindex.Posting, len(req.Keywords))
	for _, kw := range req.Keywords {
		lists[kw] = s.Local.ContainingList(kw)
	}
	state, detail := s.health()
	if state == string(core.IndexUnavailable) {
		// An unavailable partition answers empty lists that must not be
		// passed off as "this partition holds nothing".
		writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("shard %d: partition index unavailable: %s", s.ID, detail))
		return
	}
	writeJSON(w, http.StatusOK, LookupResponse{
		Shard:    s.ID,
		Of:       s.N,
		Lists:    EncodeLists(lists),
		Postings: s.Local.NumPostings(),
		Keywords: s.Local.NumKeywords(),
		State:    state,
		Detail:   detail,
	})
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	var req ExecRequest
	if !readJSON(w, r, &req) {
		return
	}
	var key string
	if s.Cache != nil {
		k, err := execCacheKey(&req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		key = k
		if rs, meta, ok := s.Cache.Get(key); ok {
			if m, ok := meta.(execMeta); ok {
				s.cacheHits.Add(1)
				wire := make([]WireResult, len(rs))
				for i, res := range rs {
					wire[i] = WireResult{Ord: res.Ord, Score: res.Score, Bind: res.Bind}
				}
				writeJSON(w, http.StatusOK, ExecResponse{Shard: s.ID, Of: s.N, Results: wire, NetsCRC: m.NetsCRC, Plans: m.Plans})
				return
			}
		}
		s.cacheMisses.Add(1)
	}
	lists, ok := DecodeLists(req.Lists)
	if !ok {
		writeError(w, http.StatusBadRequest, "malformed posting lists")
		return
	}
	src := NewQuerySource(lists, req.GlobalPostings, req.GlobalKeywords)
	results, netsCRC, plans, err := ExecuteOwned(r.Context(), s.Sys, src, &req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	wire := make([]WireResult, len(results))
	for i, res := range results {
		wire[i] = WireResult{Ord: res.Ord, Score: res.Score, Bind: res.Bind}
	}
	if s.Cache != nil {
		// Cache the Net-free form: Bind/Score/Ord is all the wire
		// response carries; the coordinator re-attaches networks from its
		// own derivation.
		cached := make([]exec.Result, len(results))
		for i, res := range results {
			cached[i] = exec.Result{Bind: res.Bind, Score: res.Score, Ord: res.Ord}
		}
		s.Cache.Put(key, cached, execMeta{NetsCRC: netsCRC, Plans: plans})
	}
	writeJSON(w, http.StatusOK, ExecResponse{Shard: s.ID, Of: s.N, Results: wire, NetsCRC: netsCRC, Plans: plans})
}

// handleCacheStats is the /debug/shardcache endpoint: hit/miss counters
// and the cache's current footprint (all zero when caching is off).
func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	stats := struct {
		Enabled bool  `json:"enabled"`
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Entries int   `json:"entries"`
		Bytes   int64 `json:"bytes"`
	}{
		Enabled: s.Cache != nil,
		Hits:    s.cacheHits.Load(),
		Misses:  s.cacheMisses.Load(),
	}
	if s.Cache != nil {
		stats.Entries, stats.Bytes = s.Cache.Usage()
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	state, detail := s.health()
	writeJSON(w, http.StatusOK, StatsResponse{
		Shard:      s.ID,
		Of:         s.N,
		Scheme:     HashScheme,
		CRC:        s.CRC,
		IndexState: state,
		IndexErr:   detail,
		Postings:   s.Local.NumPostings(),
		Keywords:   s.Local.NumKeywords(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state, detail := s.health()
	code := http.StatusOK
	if state == string(core.IndexUnavailable) {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": state, "detail": detail})
}

// ExecuteOwned derives the query's plan list from the request-carried
// global postings and evaluates it, returning the results owned by the
// request's cover set in canonical (ascending Ord) order, the network
// checksum, and the plan count.
//
// Top-k equivalence: plans are evaluated ascending exactly like a
// single node, every enumerated result is counted toward the per-plan
// cap K whether owned or not (so emission sequences — the Ord low bits
// — match single-node enumeration exactly), and evaluation stops once K
// owned results exist (later plans' results order after them). A single
// node never returns a result with per-plan sequence ≥ K — its own
// plan's first K results all order before it — so the cap loses
// nothing, and each shard's first K owned results are a superset of the
// canonical top-K's members owned by that cover.
func ExecuteOwned(ctx context.Context, sys *core.System, src *QuerySource, req *ExecRequest) ([]exec.Result, uint32, int, error) {
	if req.N <= 0 {
		return nil, 0, 0, fmt.Errorf("shard: execute with n=%d", req.N)
	}
	q := &pipeline.Query{Keywords: req.Keywords, Mode: pipeline.ModePlans, Strategy: exec.Strategy(req.Strategy)}
	if err := sys.PipelineWith(src).Run(ctx, q); err != nil {
		return nil, 0, 0, err
	}
	netsCRC := CanonCRC(q.Nets)
	own := make(map[int]bool, len(req.Parts))
	for _, p := range req.Parts {
		own[p] = true
	}
	ex := sys.ExecutorWith(src)
	var out []exec.Result
	for pi, pl := range q.Plans {
		if req.K > 0 && len(out) >= req.K {
			break // ascending feed: later plans only order after the owned K
		}
		n := 0
		if err := ex.RunContext(ctx, pl.Plan, exec.Strategy(req.Strategy), func(r exec.Result) bool {
			r.Ord = exec.MakeOrd(pi, n)
			n++
			if len(r.Bind) > 0 && own[Partition(r.Bind[0], req.N)] {
				out = append(out, r)
			}
			return req.K <= 0 || n < req.K
		}); err != nil {
			return nil, 0, 0, err
		}
	}
	if req.K > 0 && len(out) > req.K {
		// Sequential ascending evaluation keeps out in canonical order,
		// so the first K are the shard's canonically-smallest owned.
		out = out[:req.K]
	}
	return out, netsCRC, len(q.Plans), nil
}

// readJSON decodes a POST body, answering 400/405 itself on failure.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v) //xk:ignore errdrop response write failure means the client left
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
