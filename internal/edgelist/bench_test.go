package edgelist_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/edgelist"
	"repro/internal/graphsource"
	"repro/internal/rank"
)

// BenchmarkGraphsrc measures the generic-source path over the citation
// workload: dump parsing, the full load (decompose + proximity
// relations + index) and per-scorer query latency.
func BenchmarkGraphsrc(b *testing.B) {
	nodes, edges, err := datagen.CitationCSV(datagen.DefaultCitationParams())
	if err != nil {
		b.Fatal(err)
	}

	b.Run("Parse", func(b *testing.B) {
		b.SetBytes(int64(len(nodes) + len(edges)))
		for i := 0; i < b.N; i++ {
			if _, err := edgelist.Parse(bytes.NewReader(nodes), bytes.NewReader(edges), edgelist.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	ds, err := edgelist.Parse(bytes.NewReader(nodes), bytes.NewReader(edges), edgelist.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graphsource.Load(ds, core.Options{Z: 6}); err != nil {
				b.Fatal(err)
			}
		}
	})

	sys, err := graphsource.Load(ds, core.Options{Z: 6})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, scorer := range rank.Names() {
		b.Run(fmt.Sprintf("Query/%s", scorer), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, _, err := sys.QueryScoredContext(ctx, []string{"alice", "icde"}, 5, scorer)
				if err != nil {
					b.Fatal(err)
				}
				if len(rs) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
}
