package xmlgraph

import "sort"

// UndirectedNeighbor is one hop of an undirected traversal: the neighbor
// node, the underlying directed edge, and whether the edge was followed
// forward (From -> To) or backward.
type UndirectedNeighbor struct {
	Node    NodeID
	Edge    Edge
	Forward bool
}

// UndirectedNeighbors returns every node one undirected hop away from id.
// Keyword proximity search follows edges in either direction (paper §1).
func (g *Graph) UndirectedNeighbors(id NodeID) []UndirectedNeighbor {
	var ns []UndirectedNeighbor
	for _, e := range g.out[id] {
		ns = append(ns, UndirectedNeighbor{Node: e.To, Edge: e, Forward: true})
	}
	for _, e := range g.in[id] {
		ns = append(ns, UndirectedNeighbor{Node: e.From, Edge: e, Forward: false})
	}
	return ns
}

// UndirectedDistance returns the length (in edges) of the shortest
// undirected path between a and b, or -1 if they are disconnected.
func (g *Graph) UndirectedDistance(a, b NodeID) int {
	if a == b {
		return 0
	}
	dist := map[NodeID]int{a: 0}
	queue := []NodeID{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.UndirectedNeighbors(cur) {
			if _, seen := dist[nb.Node]; seen {
				continue
			}
			dist[nb.Node] = dist[cur] + 1
			if nb.Node == b {
				return dist[nb.Node]
			}
			queue = append(queue, nb.Node)
		}
	}
	return -1
}

// UndirectedPath returns one shortest undirected path from a to b as a
// node sequence (inclusive of both endpoints), or nil if disconnected.
func (g *Graph) UndirectedPath(a, b NodeID) []NodeID {
	if a == b {
		return []NodeID{a}
	}
	prev := map[NodeID]NodeID{a: a}
	queue := []NodeID{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.UndirectedNeighbors(cur) {
			if _, seen := prev[nb.Node]; seen {
				continue
			}
			prev[nb.Node] = cur
			if nb.Node == b {
				var path []NodeID
				for n := b; ; n = prev[n] {
					path = append(path, n)
					if n == a {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, nb.Node)
		}
	}
	return nil
}

// Subgraph is a subset of a graph's nodes and edges, used to represent
// node networks (paper §3.1). Every edge endpoint must be in Nodes.
type Subgraph struct {
	Nodes []NodeID
	Edges []Edge
}

// IsUncycled reports whether the subgraph's equivalent undirected graph
// has no cycles (paper §3: an uncycled directed graph). Parallel directed
// edges between the same node pair collapse to one undirected edge.
func (s Subgraph) IsUncycled() bool {
	// Union-find over nodes; an undirected cycle exists iff some edge
	// connects two nodes already in the same component.
	parent := make(map[NodeID]NodeID, len(s.Nodes))
	var find func(NodeID) NodeID
	find = func(x NodeID) NodeID {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	type pair struct{ a, b NodeID }
	seen := make(map[pair]bool, len(s.Edges))
	for _, e := range s.Edges {
		a, b := e.From, e.To
		if a > b {
			a, b = b, a
		}
		if seen[pair{a, b}] {
			continue // parallel/reverse edges collapse in the undirected view
		}
		seen[pair{a, b}] = true
		ra, rb := find(e.From), find(e.To)
		if ra == rb {
			return false
		}
		parent[ra] = rb
	}
	return true
}

// IsConnected reports whether the subgraph is connected in the undirected
// sense. The empty subgraph is connected.
func (s Subgraph) IsConnected() bool {
	if len(s.Nodes) <= 1 {
		return true
	}
	adj := make(map[NodeID][]NodeID)
	for _, e := range s.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	seen := map[NodeID]bool{s.Nodes[0]: true}
	queue := []NodeID{s.Nodes[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return len(seen) == len(s.Nodes)
}

// SortNodes sorts the subgraph's node list in place, for canonical output.
func (s *Subgraph) SortNodes() {
	sort.Slice(s.Nodes, func(i, j int) bool { return s.Nodes[i] < s.Nodes[j] })
}
