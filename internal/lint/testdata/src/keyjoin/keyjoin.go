// Package keyjoin seeds violations for the keyjoin analyzer: map keys
// assembled by concatenation or strings.Join without length prefixes.
package keyjoin

import (
	"strconv"
	"strings"
)

var memo = map[string]int{}

func record(kind, id string, parts []string) {
	memo[kind+","+id] = 1 // violation: two variable parts around a separator

	memo[strings.Join(parts, ";")] = 2 // violation: Join with an ambiguous separator

	memo["prefix:"+id] = 3 // ok: a single variable part cannot collide

	memo[lengthPrefixed(kind, id)] = 4 // ok: helper length-prefixes the parts

	//xk:ignore keyjoin ids are decimal-only upstream, the separator cannot occur
	memo[kind+"|"+id] = 5 // suppressed

	delete(memo, kind+","+id) // violation: same colliding key on the delete side
}

// lengthPrefixed is the sanctioned way to build a joined key.
func lengthPrefixed(parts ...string) string {
	var sb strings.Builder
	for _, p := range parts {
		sb.WriteString(strconv.Itoa(len(p)))
		sb.WriteByte(':')
		sb.WriteString(p)
	}
	return sb.String()
}
