// Package xmlexport serializes an XML graph back into a single XML
// document that xmlgraph.Parse round-trips: containment becomes element
// nesting, reference targets receive id attributes and reference sources
// ref attributes, and the graph's roots become children of a synthetic
// document root (load with ParseOptions.OmitRoot).
package xmlexport

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"repro/internal/xmlgraph"
)

// Write serializes g under a synthetic root element.
func Write(w io.Writer, g *xmlgraph.Graph, rootTag string) error {
	if rootTag == "" {
		rootTag = "db"
	}
	// Reference targets need ids.
	refTarget := make(map[xmlgraph.NodeID]bool)
	for _, e := range g.Edges() {
		if e.Kind == xmlgraph.Reference {
			refTarget[e.To] = true
		}
	}
	if _, err := fmt.Fprintf(w, "<%s>\n", rootTag); err != nil {
		return err
	}
	var render func(id xmlgraph.NodeID, depth int) error
	render = func(id xmlgraph.NodeID, depth int) error {
		n := g.Node(id)
		indent := make([]byte, depth)
		for i := range indent {
			indent[i] = ' '
		}
		if _, err := fmt.Fprintf(w, "%s<%s", indent, n.Label); err != nil {
			return err
		}
		if refTarget[id] {
			if _, err := fmt.Fprintf(w, " id=\"n%d\"", id); err != nil {
				return err
			}
		}
		// A node has at most one outgoing reference in our schemas; emit
		// each as a ref attribute (several become ref, ref2, ...).
		nref := 0
		for _, e := range g.Out(id) {
			if e.Kind == xmlgraph.Reference {
				attr := "ref"
				if nref > 0 {
					return fmt.Errorf("xmlexport: node %d has multiple reference edges", id)
				}
				if _, err := fmt.Fprintf(w, " %s=\"n%d\"", attr, e.To); err != nil {
					return err
				}
				nref++
			}
		}
		kids := g.ContainmentChildren(id)
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		if len(kids) == 0 && n.Value == "" {
			_, err := fmt.Fprintf(w, "/>\n")
			return err
		}
		if _, err := fmt.Fprint(w, ">"); err != nil {
			return err
		}
		if n.Value != "" {
			if err := xml.EscapeText(w, []byte(n.Value)); err != nil {
				return err
			}
		}
		if len(kids) > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
			for _, k := range kids {
				if err := render(k, depth+1); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s", indent); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "</%s>\n", n.Label)
		return err
	}
	for _, root := range g.Roots() {
		if err := render(root, 1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "</%s>\n", rootTag)
	return err
}
