package kwindex

import "sort"

// Source is the read interface of the master index: everything the CN
// generator, optimizer, executor and presentation layers need from the
// load stage's inverted index. It is implemented by *Index (in memory)
// and by *diskindex.Reader (paged on disk behind a buffer pool), so the
// query pipeline runs unchanged on either backend. core.PostingSource
// aliases this type.
type Source interface {
	// ContainingList returns the containing list L(k) of §4: the sorted
	// ⟨TO, node, schema node⟩ postings of keyword k. Multi-token keywords
	// match nodes containing all tokens. The returned slice is shared and
	// must not be modified.
	ContainingList(k string) []Posting
	// SchemaNodes returns the distinct schema nodes whose extensions
	// contain keyword k, sorted.
	SchemaNodes(k string) []string
	// TOSet returns the target objects containing keyword k, restricted
	// to postings on the given schema node ("" for any).
	TOSet(k, schemaNode string) map[int64]bool
	// NumPostings returns the total number of postings in the index.
	NumPostings() int
	// NumKeywords returns the number of distinct indexed tokens.
	NumKeywords() int
}

var _ Source = (*Index)(nil)

// Intersect returns the postings present in every list, keyed by
// (TO, node) — the multi-token keyword semantics of ContainingList.
// Each list is deduplicated by (TO, node) before counting, so duplicate
// postings within one list do not defeat the intersection. The result is
// sorted by (TO, node).
func Intersect(lists [][]Posting) []Posting {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	type key struct {
		to   int64
		node int64
	}
	counts := make(map[key]int)
	byKey := make(map[key]Posting)
	for _, ps := range lists {
		seen := make(map[key]bool)
		for _, p := range ps {
			k := key{p.TO, int64(p.Node)}
			if seen[k] {
				continue
			}
			seen[k] = true
			counts[k]++
			byKey[k] = p
		}
	}
	var out []Posting
	for k, c := range counts {
		if c == len(lists) {
			out = append(out, byKey[k])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TO != out[j].TO {
			return out[i].TO < out[j].TO
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// DistinctSchemaNodes returns the sorted distinct schema nodes of a
// posting list — the SchemaNodes computation shared by both backends.
func DistinctSchemaNodes(ps []Posting) []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range ps {
		if !seen[p.SchemaNode] {
			seen[p.SchemaNode] = true
			out = append(out, p.SchemaNode)
		}
	}
	sort.Strings(out)
	return out
}

// TOSetFromList builds the TOSet of a posting list, restricted to a
// schema node ("" for any) — shared by both backends.
func TOSetFromList(ps []Posting, schemaNode string) map[int64]bool {
	set := make(map[int64]bool)
	for _, p := range ps {
		if schemaNode == "" || p.SchemaNode == schemaNode {
			set[p.TO] = true
		}
	}
	return set
}
