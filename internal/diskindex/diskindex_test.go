package diskindex_test

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/diskindex"
	"repro/internal/kwindex"
)

// writeIndex serializes ix to a temp .xki file and returns its path.
func writeIndex(t *testing.T, ix *kwindex.Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.xki")
	if err := diskindex.Create(path, ix); err != nil {
		t.Fatal(err)
	}
	return path
}

func openIndex(t *testing.T, path string, opts diskindex.Options) *diskindex.Reader {
	t.Helper()
	rd, err := diskindex.Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rd.Close() })
	return rd
}

func fig1Index(t *testing.T) *kwindex.Index {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	return kwindex.Build(ds.Obj)
}

// requireEquivalent checks that the reader answers every lookup exactly
// like the in-memory index it was written from.
func requireEquivalent(t *testing.T, ix *kwindex.Index, rd *diskindex.Reader) {
	t.Helper()
	if rd.NumKeywords() != ix.NumKeywords() || rd.NumPostings() != ix.NumPostings() {
		t.Fatalf("counts: disk %d/%d, memory %d/%d",
			rd.NumKeywords(), rd.NumPostings(), ix.NumKeywords(), ix.NumPostings())
	}
	if !reflect.DeepEqual(rd.Terms(), ix.Terms()) {
		t.Fatal("term dictionaries differ")
	}
	for _, term := range ix.Terms() {
		want := ix.ContainingList(term)
		got := rd.ContainingList(term)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ContainingList(%q): disk %+v, memory %+v", term, got, want)
		}
		if sn := rd.SchemaNodes(term); !reflect.DeepEqual(sn, ix.SchemaNodes(term)) {
			t.Fatalf("SchemaNodes(%q) differ", term)
		}
		for _, node := range ix.SchemaNodes(term) {
			if !reflect.DeepEqual(rd.TOSet(term, node), ix.TOSet(term, node)) {
				t.Fatalf("TOSet(%q, %q) differs", term, node)
			}
		}
	}
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	ix := fig1Index(t)
	rd := openIndex(t, writeIndex(t, ix), diskindex.Options{})
	requireEquivalent(t, ix, rd)

	// Tokenized lookups go through the same path as the in-memory index.
	if got, want := rd.ContainingList("DVD error"), ix.ContainingList("DVD error"); !reflect.DeepEqual(got, want) {
		t.Fatalf("multi-token lookup: %+v vs %+v", got, want)
	}
	if rd.ContainingList("") != nil || rd.ContainingList("nosuchtoken") != nil {
		t.Fatal("empty/unknown keyword returned postings")
	}
}

// TestRoundTripTinyPool replays every lookup through a buffer pool of a
// single page — far smaller than the posting region — to exercise
// eviction and page-spanning reads.
func TestRoundTripTinyPool(t *testing.T) {
	ix := fig1Index(t)
	path := writeIndex(t, ix)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := diskindex.Options{CacheBytes: 64, PageSize: 64, Shards: 1, ListCacheBytes: -1}
	if st.Size() <= 64 {
		t.Fatalf("test premise broken: index file only %d bytes", st.Size())
	}
	rd := openIndex(t, path, opts)
	requireEquivalent(t, ix, rd)
	stats := rd.Stats()
	if stats.PageMisses == 0 {
		t.Fatal("tiny pool recorded no misses")
	}
	if stats.PagesResident > 1 {
		t.Fatalf("pool holds %d pages, budget allows 1", stats.PagesResident)
	}
}

// TestDBLPEquivalence is the datagen workload round trip: the synthetic
// DBLP database's master index served from disk answers every term
// exactly like the in-memory index.
func TestDBLPEquivalence(t *testing.T) {
	ds, err := datagen.DBLP(datagen.DefaultDBLPParams())
	if err != nil {
		t.Fatal(err)
	}
	ix := kwindex.Build(ds.Obj)
	rd := openIndex(t, writeIndex(t, ix), diskindex.Options{CacheBytes: 4096})
	requireEquivalent(t, ix, rd)
}

// TestQueryEquivalence runs full keyword queries through a system whose
// master index was swapped for the disk reader and compares the ranked
// results with the in-memory run.
func TestQueryEquivalence(t *testing.T) {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
		core.Options{Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	ix := sys.Index.(*kwindex.Index)
	queries := [][]string{{"john", "vcr"}, {"us", "vcr"}, {"tv", "vcr"}}
	var want [][]string
	for _, q := range queries {
		rs, err := sys.QueryAll(q)
		if err != nil {
			t.Fatal(err)
		}
		var keys []string
		for _, r := range rs {
			keys = append(keys, r.Key())
		}
		want = append(want, keys)
	}

	sys.Index = openIndex(t, writeIndex(t, ix), diskindex.Options{CacheBytes: 4096})
	for i, q := range queries {
		rs, err := sys.QueryAll(q)
		if err != nil {
			t.Fatal(err)
		}
		var keys []string
		for _, r := range rs {
			keys = append(keys, r.Key())
		}
		if !reflect.DeepEqual(keys, want[i]) {
			t.Fatalf("query %v: disk results %v, memory results %v", q, keys, want[i])
		}
	}
}

// TestConcurrentReaders hammers one reader from many goroutines (run
// under -race by make race) and checks every answer.
func TestConcurrentReaders(t *testing.T) {
	ix := fig1Index(t)
	// One-page pool maximizes eviction races.
	rd := openIndex(t, writeIndex(t, ix), diskindex.Options{CacheBytes: 64, PageSize: 64, ListCacheBytes: 512})
	terms := ix.Terms()
	want := make(map[string][]kwindex.Posting, len(terms))
	for _, term := range terms {
		want[term] = ix.ContainingList(term)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				term := terms[(g*53+round*17)%len(terms)]
				if got := rd.ContainingList(term); !reflect.DeepEqual(got, want[term]) {
					select {
					case errs <- term:
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if term, bad := <-errs; bad {
		t.Fatalf("concurrent lookup of %q returned wrong postings", term)
	}
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsWarmup(t *testing.T) {
	ix := fig1Index(t)
	rd := openIndex(t, writeIndex(t, ix), diskindex.Options{})
	term := ix.Terms()[0]
	rd.ContainingList(term)
	cold := rd.Stats()
	if cold.PageMisses == 0 || cold.BytesRead == 0 {
		t.Fatalf("cold lookup read nothing: %+v", cold)
	}
	rd.ContainingList(term)
	warm := rd.Stats()
	if warm.ListHits == 0 && warm.PageHits == cold.PageHits {
		t.Fatalf("warm lookup hit no cache: %+v", warm)
	}
	if warm.BytesRead != cold.BytesRead {
		t.Fatalf("warm lookup touched disk: %d -> %d bytes", cold.BytesRead, warm.BytesRead)
	}
}

func TestOpenRejectsTruncation(t *testing.T) {
	ix := fig1Index(t)
	path := writeIndex(t, ix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 40, 87, 88, len(data) / 2, len(data) - 1} {
		p := filepath.Join(t.TempDir(), "trunc.xki")
		if err := os.WriteFile(p, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := diskindex.Open(p, diskindex.Options{}); err == nil {
			t.Errorf("file truncated to %d bytes accepted", n)
		}
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	ix := fig1Index(t)
	path := writeIndex(t, ix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the magic, version, section offsets, meta CRC and
	// the metadata region itself; every mutation must be rejected.
	for _, off := range []int{0, 4, 32, 64, 80, 84, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xFF
		p := filepath.Join(t.TempDir(), "corrupt.xki")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := diskindex.Open(p, diskindex.Options{}); err == nil {
			t.Errorf("byte %d corrupted but file accepted", off)
		}
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := diskindex.Open(filepath.Join(t.TempDir(), "absent.xki"), diskindex.Options{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

// FuzzReaderOpen throws mutated index files at Open and, when a file is
// accepted, at the lookup path; neither may panic, and accepted files
// must answer lookups without corrupting memory.
func FuzzReaderOpen(f *testing.F) {
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		f.Fatal(err)
	}
	dir := f.TempDir()
	valid := filepath.Join(dir, "seed.xki")
	if err := diskindex.Create(valid, kwindex.Build(ds.Obj)); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:88])
	f.Add(data[:len(data)/2])
	f.Add([]byte{})
	f.Add([]byte("XKI1 but far too short"))
	mut := append([]byte(nil), data...)
	mut[100] ^= 0xA5
	f.Add(mut)

	f.Fuzz(func(t *testing.T, b []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.xki")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Skip()
		}
		rd, err := diskindex.Open(p, diskindex.Options{CacheBytes: 4096})
		if err != nil {
			return
		}
		defer rd.Close()
		for _, term := range rd.Terms() {
			rd.ContainingList(term)
			rd.SchemaNodes(term)
		}
		rd.ContainingList("probe")
		rd.TOSet("probe", "")
		rd.Stats()
	})
}
