package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	//xk:ignore retryloop directory walk, not a retry: d strictly ascends and parent==d terminates
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	f, err := os.Open(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	defer f.Close() //xk:ignore errdrop read-only file; Close cannot lose data
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// pkgDir is one buildable package directory of the module.
type pkgDir struct {
	dir        string // absolute
	importPath string
	goFiles    []string // build-constraint-selected non-test files
	imports    []string
}

// modulePackages enumerates every buildable package under root,
// skipping testdata, hidden directories, and docs. Test files are not
// loaded: the invariants xkvet enforces live in the shipped code, and
// keeping tests out avoids type-checking external test packages.
func modulePackages(root, modPath string) (map[string]*pkgDir, error) {
	pkgs := make(map[string]*pkgDir)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "docs") {
			return filepath.SkipDir
		}
		bp, err := build.Default.ImportDir(path, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return fmt.Errorf("lint: reading %s: %w", path, err)
		}
		if len(bp.GoFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		pkgs[ip] = &pkgDir{dir: path, importPath: ip, goFiles: bp.GoFiles, imports: bp.Imports}
		return nil
	})
	return pkgs, err
}

// moduleImporter resolves module-internal imports from the packages
// already type-checked this run, and everything else (the standard
// library) through the source importer, so the whole load needs nothing
// beyond GOROOT sources.
type moduleImporter struct {
	modPath string
	checked map[string]*types.Package
	std     types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		if pkg, ok := m.checked[path]; ok {
			return pkg, nil
		}
		return nil, fmt.Errorf("lint: internal package %s not yet checked (import cycle?)", path)
	}
	return m.std.Import(path)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// parseDir parses the selected files of one package directory.
func parseDir(fset *token.FileSet, p *pkgDir) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(p.goFiles))
	for _, name := range p.goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// CheckModule loads every package of the module rooted at root,
// type-checks them in dependency order, runs the analyzers, and returns
// the findings that survive //xk:ignore filtering, with filenames
// relative to root.
func CheckModule(root string, analyzers []*Analyzer) ([]Finding, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := modulePackages(root, modPath)
	if err != nil {
		return nil, err
	}

	// Topologically order the module-internal import graph so every
	// dependency is checked before its importers.
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(ip string) error
	visit = func(ip string) error {
		switch state[ip] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", ip)
		case 2:
			return nil
		}
		state[ip] = 1
		for _, dep := range pkgs[ip].imports {
			if dep != modPath && !strings.HasPrefix(dep, modPath+"/") {
				continue
			}
			if pkgs[dep] == nil {
				return fmt.Errorf("lint: %s imports %s, which has no buildable files", ip, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[ip] = 2
		order = append(order, ip)
		return nil
	}
	roots := make([]string, 0, len(pkgs))
	for ip := range pkgs {
		roots = append(roots, ip)
	}
	sort.Strings(roots)
	for _, ip := range roots {
		if err := visit(ip); err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		modPath: modPath,
		checked: make(map[string]*types.Package),
		std:     importer.ForCompiler(fset, "source", nil),
	}
	// The call graph accrues across the topo-sorted check: when a
	// package's analyzers run, every module function it can statically
	// reach is already registered.
	graph := NewCallGraph()
	var all []Finding
	for _, ip := range order {
		files, err := parseDir(fset, pkgs[ip])
		if err != nil {
			return nil, err
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(ip, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", ip, err)
		}
		imp.checked[ip] = pkg
		graph.AddPackage(fset, files, info)
		all = append(all, filterIgnored(fset, files, runAnalyzers(fset, files, pkg, info, graph, analyzers))...)
	}
	relativize(all, root)
	sortFindings(all)
	return all, nil
}

// CheckDir type-checks the single package in dir under the given import
// path (which determines path-scoped analyzers such as errdrop), runs
// the analyzers, and returns the surviving findings with filenames
// relative to dir. It exists for the analyzer testdata packages, which
// live outside the module's build graph.
func CheckDir(dir, importPath string, analyzers []*Analyzer) ([]Finding, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	p := &pkgDir{dir: dir, importPath: importPath, goFiles: bp.GoFiles}
	fset := token.NewFileSet()
	files, err := parseDir(fset, p)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	graph := NewCallGraph()
	graph.AddPackage(fset, files, info)
	out := filterIgnored(fset, files, runAnalyzers(fset, files, pkg, info, graph, analyzers))
	relativize(out, dir)
	sortFindings(out)
	return out, nil
}

// relativize rewrites finding filenames relative to root, with forward
// slashes, for stable output across machines.
func relativize(fs []Finding, root string) {
	for i := range fs {
		if rel, err := filepath.Rel(root, fs[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			fs[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
}
