package repro

import (
	"math/rand"

	"repro/internal/relstore"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func newBenchStore() *relstore.Store { return relstore.NewStore(relstore.DefaultPoolPages) }
