// Command xkserve hosts the XKeyword web demo (the paper's Figure 4):
// a keyword query page and JSON APIs for the ranked result list and the
// interactive presentation graphs.
//
// Usage:
//
//	xkserve [-addr :8080] [-schema tpch|dblp] [-in file.xml] [-load snapshot]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/persist"
	"repro/internal/webdemo"
	"repro/internal/xmlgraph"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		schemaFlag = flag.String("schema", "dblp", "built-in schema: tpch or dblp")
		in         = flag.String("in", "", "XML file to load (default: built-in synthetic data)")
		loadFrom   = flag.String("load", "", "restore a snapshot instead of loading XML")
		z          = flag.Int("z", 8, "maximum MTNN size Z")
	)
	flag.Parse()

	start := time.Now()
	sys, err := buildSystem(*loadFrom, *schemaFlag, *in, *z)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xkserve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "xkserve: %d target objects ready in %v; listening on %s\n",
		sys.Obj.NumObjects(), time.Since(start).Round(time.Millisecond), *addr)
	srv := webdemo.NewServer(sys)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "xkserve:", err)
		os.Exit(1)
	}
}

func buildSystem(loadFrom, schemaFlag, in string, z int) (*core.System, error) {
	if loadFrom != "" {
		return persist.LoadFile(loadFrom)
	}
	switch schemaFlag {
	case "tpch", "dblp":
	default:
		return nil, fmt.Errorf("unknown schema %q", schemaFlag)
	}
	if in != "" {
		data, err := loadXML(in)
		if err != nil {
			return nil, err
		}
		if schemaFlag == "tpch" {
			return core.Load(datagen.TPCHSchema(), datagen.TPCHSpec(), data, core.Options{Z: z})
		}
		return core.Load(datagen.DBLPSchema(), datagen.DBLPSpec(), data, core.Options{Z: z})
	}
	var ds *datagen.Dataset
	var err error
	if schemaFlag == "tpch" {
		ds, err = datagen.TPCH(datagen.DefaultTPCHParams())
	} else {
		ds, err = datagen.DBLP(datagen.DefaultDBLPParams())
	}
	if err != nil {
		return nil, err
	}
	return core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
		core.Options{Z: z})
}

func loadXML(path string) (*xmlgraph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return xmlgraph.Parse(f, xmlgraph.ParseOptions{OmitRoot: true})
}
