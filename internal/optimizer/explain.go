package optimizer

import (
	"fmt"
	"strings"

	"repro/internal/relstore"
	"repro/internal/tss"
)

// Explain renders the plan as a readable pipeline: the seed, then one
// line per probe step with the connection relation, the probe column and
// its access path, the equality checks, and the occurrences it binds —
// the execution-plan output the paper's optimizer hands to the execution
// module (Figure 7).
func (p *Plan) Explain(tg *tss.Graph, store *relstore.Store) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan for %s (score %d, %d joins)\n", p.Net, p.Net.Score(), p.Joins)
	for i, s := range p.Steps {
		if s.Seed {
			occ := p.Net.Occs[s.Occ]
			n := "∅"
			if p.Filters[s.Occ] != nil {
				n = fmt.Sprint(len(p.Filters[s.Occ]))
			}
			fmt.Fprintf(&sb, "  %d. seed %s@occ%d (containing list: %s)\n", i+1, occ.Segment, s.Occ, n)
			continue
		}
		rel := s.Piece.Frag.RelationName()
		path := "scan"
		if store != nil {
			if r := store.Relation(rel); r != nil {
				if _, ok := r.ClusteredOn([]int{s.ProbePos}); ok {
					path = "clustered"
				} else if r.HasHashIndex(s.ProbePos) {
					path = "hash"
				}
			}
		}
		var news, checks []string
		for _, pos := range s.NewPos {
			news = append(news, fmt.Sprintf("occ%d", s.Piece.Occs[pos]))
		}
		for _, pos := range s.CheckPos {
			checks = append(checks, fmt.Sprintf("t%d=occ%d", pos, s.Piece.Occs[pos]))
		}
		line := fmt.Sprintf("  %d. probe %s [%s] by t%d=occ%d", i+1, s.Piece.Frag.String(tg), path, s.ProbePos, s.Piece.Occs[s.ProbePos])
		if len(checks) > 0 {
			line += " check " + strings.Join(checks, ",")
		}
		if len(news) > 0 {
			line += " bind " + strings.Join(news, ",")
		}
		sb.WriteString(line + "\n")
	}
	return strings.TrimRight(sb.String(), "\n")
}
