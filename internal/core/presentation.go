package core

import (
	"repro/internal/decomp"
	"repro/internal/exec"
	"repro/internal/presentation"
)

// PresentationSession creates a presentation-graph session over this
// system. fragments selects the connection relations the on-demand
// queries may probe (nil = the system's whole decomposition); the §7
// expansion experiment compares the minimal, inlined and combined
// fragment sets this way.
func (s *System) PresentationSession(fragments []decomp.Fragment) *presentation.Session {
	var fallback []decomp.Fragment
	if fragments == nil {
		fragments = s.Decomp.Fragments
	} else {
		fallback = s.Decomp.Fragments
	}
	sess := &presentation.Session{
		TSS:       s.TSS,
		Obj:       s.Obj,
		Store:     s.Store,
		Index:     s.Index,
		Stats:     s.Stats,
		Fragments: fragments,
		Fallback:  fallback,
	}
	if s.Opts.CacheSize >= 0 {
		sess.Cache = exec.NewLookupCache(s.Opts.CacheSize)
	}
	return sess
}

// MinimalFragments returns the single-edge fragments of the system's
// decomposition (the minimal probe set of Figure 16(b)).
func (s *System) MinimalFragments() []decomp.Fragment {
	var out []decomp.Fragment
	for _, f := range s.Decomp.Fragments {
		if f.Size() == 1 {
			out = append(out, f)
		}
	}
	return out
}

// InlinedFragments returns the multi-edge fragments of the system's
// decomposition (the inlined probe set of Figure 16(b)).
func (s *System) InlinedFragments() []decomp.Fragment {
	var out []decomp.Fragment
	for _, f := range s.Decomp.Fragments {
		if f.Size() > 1 {
			out = append(out, f)
		}
	}
	return out
}
