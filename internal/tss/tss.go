// Package tss implements Target Schema Segments (paper §3): the
// administrator-designated decomposition of the schema graph into minimal
// self-contained information pieces. TSS graph nodes correspond to the
// target objects presented to users; TSS edges abbreviate schema paths
// that may run through dummy schema nodes (supplier, sub, line, ...) and
// carry semantic annotations in both directions.
package tss

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/xmlgraph"
)

// Segment is one target schema segment: a named set of schema nodes with
// a designated head. The head identifies target-object instances; the
// remaining members hang off the head via intra-segment containment
// (e.g. person = {person, name, nation} with head person).
type Segment struct {
	Name    string
	Head    string
	Members []string // includes Head
}

// Edge is a TSS graph edge. It abbreviates a directed schema path from a
// member of segment From, through zero or more dummy schema nodes, to a
// member of segment To.
type Edge struct {
	// ID is the edge's index in the graph's deterministic edge order;
	// parallel TSS edges between the same segments get distinct IDs.
	ID int
	// From and To are segment names.
	From, To string
	// SchemaPath is the abbreviated schema path; its first edge leaves a
	// member of From and its last edge enters a member of To.
	SchemaPath []schema.Edge
	// Kind is Reference if any schema edge on the path is a reference,
	// else Containment.
	Kind xmlgraph.EdgeKind
	// ForwardMany reports whether one From-instance may connect to many
	// To-instances through this edge (some containment step on the path
	// has maxOccurs > 1 or unbounded).
	ForwardMany bool
	// BackwardMany reports whether one To-instance may connect to many
	// From-instances (the path contains a reference edge).
	BackwardMany bool
	// ChoicePrefix names the choice schema node the path runs through,
	// provided every step from From up to and including the choice node
	// is to-one containment (so all branches through this prefix share
	// one choice instance). Empty otherwise.
	ChoicePrefix string
	// ForwardLabel and BackwardLabel are the semantic explanations shown
	// on presentation graphs ("placed" / "placed by").
	ForwardLabel, BackwardLabel string
}

// PathString renders the schema path, e.g. "lineitem>line>part".
func (e Edge) PathString() string {
	if len(e.SchemaPath) == 0 {
		return ""
	}
	parts := []string{e.SchemaPath[0].From}
	for _, se := range e.SchemaPath {
		parts = append(parts, se.To)
	}
	return strings.Join(parts, ">")
}

// Graph is a TSS graph derived from a schema graph. Construct with Derive.
type Graph struct {
	Schema    *schema.Graph
	segments  map[string]*Segment
	segOrder  []string
	bySchema  map[string]string // schema node -> segment name ("" for dummies)
	edges     []Edge            // indexed by Edge.ID
	out       map[string][]int  // segment -> edge ids
	in        map[string][]int
	headOf    map[string]string // head schema node -> segment
	annotated map[string][2]string
}

// SegmentSpec declares one segment for Derive.
type SegmentSpec struct {
	Name    string
	Head    string
	Members []string // Head is implied and need not be repeated
}

// Annotation attaches semantic labels to the TSS edge whose schema path
// is Path (rendered as in Edge.PathString).
type Annotation struct {
	Path     string
	Forward  string
	Backward string
}

// Spec is the administrator's input to Derive: the segments (everything
// else becomes a dummy schema node) and optional edge annotations.
type Spec struct {
	Segments    []SegmentSpec
	Annotations []Annotation
}

// Derive builds the TSS graph for a schema graph and a segment spec,
// enumerating TSS edges as forward schema paths between segments through
// dummy nodes. It validates that segments partition (a subset of) the
// schema nodes, that each member is reachable from its head via
// intra-segment containment, and that the resulting TSS graph is
// deterministic (edges sorted by (From, To, path)).
func Derive(sg *schema.Graph, spec Spec) (*Graph, error) {
	g := &Graph{
		Schema:    sg,
		segments:  make(map[string]*Segment),
		bySchema:  make(map[string]string),
		out:       make(map[string][]int),
		in:        make(map[string][]int),
		headOf:    make(map[string]string),
		annotated: make(map[string][2]string),
	}
	for _, a := range spec.Annotations {
		g.annotated[a.Path] = [2]string{a.Forward, a.Backward}
	}
	for _, ss := range spec.Segments {
		if ss.Name == "" || ss.Head == "" {
			return nil, fmt.Errorf("tss: segment needs name and head: %+v", ss)
		}
		if _, dup := g.segments[ss.Name]; dup {
			return nil, fmt.Errorf("tss: duplicate segment %q", ss.Name)
		}
		if sg.Node(ss.Head) == nil {
			return nil, fmt.Errorf("tss: segment %q head %q is not a schema node", ss.Name, ss.Head)
		}
		members := append([]string{ss.Head}, ss.Members...)
		seen := make(map[string]bool)
		var uniq []string
		for _, m := range members {
			if sg.Node(m) == nil {
				return nil, fmt.Errorf("tss: segment %q member %q is not a schema node", ss.Name, m)
			}
			if prev, taken := g.bySchema[m]; taken {
				return nil, fmt.Errorf("tss: schema node %q in both %q and %q", m, prev, ss.Name)
			}
			if !seen[m] {
				seen[m] = true
				uniq = append(uniq, m)
				g.bySchema[m] = ss.Name
			}
		}
		seg := &Segment{Name: ss.Name, Head: ss.Head, Members: uniq}
		g.segments[ss.Name] = seg
		g.segOrder = append(g.segOrder, ss.Name)
		g.headOf[ss.Head] = ss.Name
	}
	// Intra-segment reachability: every member hangs under the head via
	// containment edges within the segment.
	for _, name := range g.segOrder {
		seg := g.segments[name]
		reach := map[string]bool{seg.Head: true}
		queue := []string{seg.Head}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range sg.Out(cur) {
				if e.Kind == xmlgraph.Containment && g.bySchema[e.To] == name && !reach[e.To] {
					reach[e.To] = true
					queue = append(queue, e.To)
				}
			}
		}
		for _, m := range seg.Members {
			if !reach[m] {
				return nil, fmt.Errorf("tss: segment %q member %q not reachable from head %q via intra-segment containment", name, m, seg.Head)
			}
		}
	}
	if err := g.deriveEdges(); err != nil {
		return nil, err
	}
	return g, nil
}

// deriveEdges enumerates all forward schema paths that leave a segment,
// pass only through dummy schema nodes, and enter a segment.
func (g *Graph) deriveEdges() error {
	type raw struct {
		from, to string
		path     []schema.Edge
	}
	var raws []raw
	for _, segName := range g.segOrder {
		seg := g.segments[segName]
		for _, m := range seg.Members {
			// DFS through dummies.
			var walk func(cur string, path []schema.Edge, visited map[string]bool) error
			walk = func(cur string, path []schema.Edge, visited map[string]bool) error {
				for _, e := range g.Schema.Out(cur) {
					dst := e.To
					dstSeg := g.bySchema[dst]
					np := append(append([]schema.Edge(nil), path...), e)
					if dstSeg == segName && len(np) == 1 {
						continue // intra-segment edge, not a TSS edge
					}
					if dstSeg != "" {
						raws = append(raws, raw{from: segName, to: dstSeg, path: np})
						continue
					}
					if visited[dst] {
						return fmt.Errorf("tss: cycle through dummy schema node %q", dst)
					}
					visited[dst] = true
					if err := walk(dst, np, visited); err != nil {
						return err
					}
					delete(visited, dst)
				}
				return nil
			}
			if err := walk(m, nil, map[string]bool{m: true}); err != nil {
				return err
			}
		}
	}
	sort.Slice(raws, func(i, j int) bool {
		if raws[i].from != raws[j].from {
			return raws[i].from < raws[j].from
		}
		if raws[i].to != raws[j].to {
			return raws[i].to < raws[j].to
		}
		return pathKey(raws[i].path) < pathKey(raws[j].path)
	})
	for i, r := range raws {
		e := Edge{ID: i, From: r.from, To: r.to, SchemaPath: r.path}
		e.Kind = xmlgraph.Containment
		for _, se := range r.path {
			if se.Kind == xmlgraph.Reference {
				e.Kind = xmlgraph.Reference
				e.BackwardMany = true
			}
			if se.Kind == xmlgraph.Containment && se.MaxOccurs != 1 {
				e.ForwardMany = true
			}
		}
		// Choice prefix: scan forward while the path is to-one
		// containment; if such a step lands on a choice node, record it.
		toOne := true
		for _, se := range r.path[:len(r.path)-1] {
			if se.Kind != xmlgraph.Containment || se.MaxOccurs != 1 {
				toOne = false
				break
			}
			if g.Schema.IsChoice(se.To) {
				if toOne {
					e.ChoicePrefix = se.To
				}
				break
			}
		}
		if ann, ok := g.annotated[e.PathString()]; ok {
			e.ForwardLabel, e.BackwardLabel = ann[0], ann[1]
		} else {
			e.ForwardLabel = "contains"
			e.BackwardLabel = "contained in"
			if e.Kind == xmlgraph.Reference {
				e.ForwardLabel = "refers to"
				e.BackwardLabel = "referred by"
			}
		}
		g.edges = append(g.edges, e)
		g.out[e.From] = append(g.out[e.From], e.ID)
		g.in[e.To] = append(g.in[e.To], e.ID)
	}
	return nil
}

func pathKey(path []schema.Edge) string {
	var sb strings.Builder
	for _, e := range path {
		sb.WriteString(e.From)
		sb.WriteByte('>')
		sb.WriteString(e.To)
		if e.Kind == xmlgraph.Reference {
			sb.WriteByte('r')
		}
		sb.WriteByte('|')
	}
	return sb.String()
}

// Segment returns the named segment, or nil.
func (g *Graph) Segment(name string) *Segment { return g.segments[name] }

// Segments returns all segment names in declaration order.
func (g *Graph) Segments() []string {
	out := make([]string, len(g.segOrder))
	copy(out, g.segOrder)
	return out
}

// SegmentOf returns the segment containing schema node s ("" for dummies).
func (g *Graph) SegmentOf(s string) string { return g.bySchema[s] }

// IsDummy reports whether schema node s belongs to no segment.
func (g *Graph) IsDummy(s string) bool {
	return g.Schema.Node(s) != nil && g.bySchema[s] == ""
}

// Edge returns the edge with the given id.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns all TSS edges in deterministic order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// NumEdges returns the number of TSS edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Out returns the ids of edges leaving segment name.
func (g *Graph) Out(name string) []int { return g.out[name] }

// In returns the ids of edges entering segment name.
func (g *Graph) In(name string) []int { return g.in[name] }

// HeadSegment returns the segment whose head is schema node s, if any.
func (g *Graph) HeadSegment(s string) (string, bool) {
	seg, ok := g.headOf[s]
	return seg, ok
}
