package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// shardClient is the coordinator's handle to one shard server: an HTTP
// client plus a per-shard circuit breaker and latency histogram. The
// breaker opens after consecutive failures so a dead shard costs one
// fast-failed check per query instead of a full timeout, and half-opens
// after its window so a recovered shard rejoins without a restart.
type shardClient struct {
	id   int
	base string // e.g. http://host:port
	hc   *http.Client
	lat  obs.Histogram

	timeout   time.Duration
	threshold int
	window    time.Duration

	mu        sync.Mutex
	fails     int       // guarded by mu — consecutive failures
	openUntil time.Time // guarded by mu — breaker open deadline
	probing   bool      // guarded by mu — a half-open probe is in flight
}

// errBreakerOpen marks fast-fails; callers treat it like any shard
// failure but skip retries (the breaker exists to avoid them).
var errBreakerOpen = fmt.Errorf("circuit breaker open")

// allow reports whether a call may proceed: yes while closed, and for
// exactly one probe per window while open.
func (c *shardClient) allow() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fails < c.threshold {
		return true
	}
	if time.Now().After(c.openUntil) && !c.probing {
		c.probing = true // half-open: admit one probe
		return true
	}
	return false
}

func (c *shardClient) noteSuccess() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fails = 0
	c.probing = false
}

func (c *shardClient) noteFailure() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fails++
	c.probing = false
	if c.fails >= c.threshold {
		c.openUntil = time.Now().Add(c.window)
	}
}

// broken reports whether the breaker currently fast-fails (for health).
func (c *shardClient) broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fails >= c.threshold && time.Now().Before(c.openUntil)
}

// call POSTs a JSON request with bounded retries (transient transport
// errors and 5xx responses only; cancellation and breaker fast-fails
// are not retried) and decodes the JSON response.
func (c *shardClient) call(ctx context.Context, path string, reqBody, respBody any, retry fault.RetryPolicy) error {
	if !c.allow() {
		return fmt.Errorf("shard %d at %s: %w", c.id, c.base, errBreakerOpen)
	}
	var stop error // cancellation: parked here to end the retry loop early
	err := retry.Do(func() error {
		err := c.once(ctx, path, reqBody, respBody)
		if err != nil && ctx.Err() != nil {
			stop = ctx.Err()
			return nil
		}
		return err
	})
	if stop != nil {
		err = stop
	}
	if err != nil {
		c.noteFailure()
		return fmt.Errorf("shard %d at %s: %w", c.id, c.base, err)
	}
	c.noteSuccess()
	return nil
}

func (c *shardClient) once(ctx context.Context, path string, reqBody, respBody any) error {
	body, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := c.hc.Do(req)
	c.lat.Observe(time.Since(start))
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body) //xk:ignore errdrop draining for connection reuse
		resp.Body.Close()                     //xk:ignore errdrop response body close cannot lose data
	}()
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er) //xk:ignore errdrop best-effort error detail; status carries the failure
		return fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, er.Error)
	}
	return json.NewDecoder(resp.Body).Decode(respBody)
}
