package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// keyjoin flags map keys assembled by concatenating (or
// strings.Join-ing) multiple variable strings. Unless every part is
// length-prefixed, distinct inputs can collide on the separator: the
// PR 3 ShapeSignature bug had ","-joined edge lists colliding with
// ";"-joined node lists in the CN memo, silently merging unrelated
// cache entries. Build such keys with length-prefixed parts (or a
// struct key) instead.
var analyzerKeyjoin = &Analyzer{
	Name: "keyjoin",
	Doc:  "map keys built by concatenating variable strings can collide; length-prefix the parts or use a struct key",
	Run:  runKeyjoin,
}

func runKeyjoin(p *Pass) {
	check := func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.IndexExpr:
			if t := p.TypeOf(e.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					checkKeyExpr(p, e.Index)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && len(e.Args) == 2 {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					checkKeyExpr(p, e.Args[1])
				}
			}
		}
		return true
	}
	for _, ff := range p.Flow.Funcs {
		ast.Inspect(ff.Body, check)
	}
	// Package-level initializers (`var x = m[a+b]`) are outside every
	// FuncFlow body; walk them separately, skipping function literals
	// (those are covered by their own FuncFlow above).
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				return check(n)
			})
		}
	}
}

// checkKeyExpr reports key expressions that concatenate two or more
// non-constant strings.
func checkKeyExpr(p *Pass, key ast.Expr) {
	key = ast.Unparen(key)
	if call, ok := key.(*ast.CallExpr); ok {
		if fn := calleeFunc(p, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "strings" && fn.Name() == "Join" {
			p.Reportf(key.Pos(), "map key built with strings.Join; parts containing the separator collide — length-prefix the parts or use a struct key")
		}
		return
	}
	bin, ok := key.(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD {
		return
	}
	if t := p.TypeOf(bin); t == nil || !isStringType(t) {
		return
	}
	if n := countVariableParts(p, bin); n >= 2 {
		p.Reportf(key.Pos(), "map key concatenates %d variable strings; distinct inputs can collide on the separator — length-prefix the parts or use a struct key", n)
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// countVariableParts counts the non-constant leaves of a + chain.
func countVariableParts(p *Pass, e ast.Expr) int {
	e = ast.Unparen(e)
	if bin, ok := e.(*ast.BinaryExpr); ok && bin.Op == token.ADD {
		return countVariableParts(p, bin.X) + countVariableParts(p, bin.Y)
	}
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		return 0 // compile-time constant, including literals
	}
	return 1
}
