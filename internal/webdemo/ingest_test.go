package webdemo_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/qserve"
	"repro/internal/segidx"
	"repro/internal/webdemo"
)

// ingestServer builds the Figure 1 demo system with a live segmented
// index layered over the batch-built master index, exactly as
// xkserve -segdir wires it.
func ingestServer(t *testing.T) (*httptest.Server, *core.System) {
	t.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.LoadPrepared(&core.Prepared{Schema: ds.Schema, TSS: ds.TSS, Data: ds.Data, Obj: ds.Obj},
		core.Options{Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	st, err := segidx.Open(t.TempDir(), segidx.Options{Base: sys.Index, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	sys.Index = st
	wd := webdemo.NewServerWith(sys, qserve.New(sys, qserve.Options{}))
	wd.EnableIngest(st)
	srv := httptest.NewServer(wd.Handler())
	t.Cleanup(srv.Close)
	return srv, sys
}

func postJSON(t *testing.T, url string, body interface{}, out interface{}) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestIngestEndpoint: a batch POSTed to /api/ingest becomes visible to
// /api/query immediately — including through the result cache, which
// must be invalidated by the write.
func TestIngestEndpoint(t *testing.T) {
	srv, sys := ingestServer(t)

	var out struct {
		Results []struct {
			Score int `json:"score"`
		} `json:"results"`
	}
	// Prime the cache with the miss: no object mentions the new word yet.
	if code := getJSON(t, srv.URL+"/api/query?q=zebrafish&k=5", &out); code != http.StatusOK {
		t.Fatalf("pre-ingest query status %d", code)
	}
	if len(out.Results) != 0 {
		t.Fatalf("pre-ingest results = %d, want 0", len(out.Results))
	}

	// Update an existing target object so its text now contains the new
	// word. Reusing a live TO keeps presentation (summaries, fragments)
	// on the known-object path.
	docs := segidx.DocumentsFromObjectGraph(sys.Obj)
	if len(docs) == 0 {
		t.Fatal("no documents in object graph")
	}
	doc := docs[0]
	doc.Fields[len(doc.Fields)-1].Value += " zebrafish"
	var ack struct {
		Added   int  `json:"added"`
		Deleted int  `json:"deleted"`
		Flushed bool `json:"flushed"`
	}
	code := postJSON(t, srv.URL+"/api/ingest", map[string]interface{}{
		"add": []segidx.Document{doc},
	}, &ack)
	if code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	if ack.Added != 1 || ack.Deleted != 0 || ack.Flushed {
		t.Fatalf("ack = %+v", ack)
	}

	// The same query must now find the updated object: the write
	// invalidated the cached empty answer.
	out.Results = nil
	if code := getJSON(t, srv.URL+"/api/query?q=zebrafish&k=5", &out); code != http.StatusOK {
		t.Fatalf("post-ingest query status %d", code)
	}
	if len(out.Results) == 0 {
		t.Fatal("ingested keyword not visible to /api/query")
	}

	// Deleting the object hides it again.
	if code := postJSON(t, srv.URL+"/api/ingest", map[string]interface{}{
		"delete": []int64{doc.TO},
	}, &ack); code != http.StatusOK {
		t.Fatalf("delete status %d", code)
	}
	out.Results = nil
	if code := getJSON(t, srv.URL+"/api/query?q=zebrafish&k=5", &out); code != http.StatusOK {
		t.Fatalf("post-delete query status %d", code)
	}
	if len(out.Results) != 0 {
		t.Fatalf("deleted object still visible: %d results", len(out.Results))
	}
}

// TestIngestEndpointErrors: method, body and batch validation.
func TestIngestEndpointErrors(t *testing.T) {
	srv, _ := ingestServer(t)

	resp, err := http.Get(srv.URL + "/api/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}

	if code := postJSON(t, srv.URL+"/api/ingest", map[string]interface{}{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch status %d, want 400", code)
	}

	resp, err = http.Post(srv.URL+"/api/ingest", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d, want 400", resp.StatusCode)
	}
}

// TestIngestDisabled: without EnableIngest the endpoints 404.
func TestIngestDisabled(t *testing.T) {
	srv := demoServer(t)
	for _, path := range []string{"/api/ingest", "/debug/segidx"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestSegidxStatsEndpoint: /debug/segidx reflects the store's state,
// and a flush requested through the API moves documents to a segment.
func TestSegidxStatsEndpoint(t *testing.T) {
	srv, sys := ingestServer(t)
	docs := segidx.DocumentsFromObjectGraph(sys.Obj)
	var ack struct{}
	if code := postJSON(t, srv.URL+"/api/ingest", map[string]interface{}{
		"add":   []segidx.Document{docs[0]},
		"flush": true,
	}, &ack); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	var st segidx.Stats
	if code := getJSON(t, srv.URL+"/debug/segidx", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if len(st.Segments) != 1 {
		t.Fatalf("segments = %d, want 1 after flush", len(st.Segments))
	}
	if st.MemDocs != 0 {
		t.Fatalf("memtable docs = %d, want 0 after flush", st.MemDocs)
	}
}
