// Package errdrop seeds violations for the errdrop analyzer: call
// statements in internal/ packages that silently discard errors.
package errdrop

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
)

func flush(f *os.File) {
	fmt.Fprintf(f, "header\n") // violation: (n, error) of a real writer dropped

	f.Close() // violation: Close error dropped on a write path

	defer f.Sync() // violation: deferred call still discards the error

	var sb strings.Builder
	fmt.Fprintf(&sb, "row %d\n", 1) // ok: strings.Builder never fails
	sb.WriteString("tail")          // ok

	var buf bytes.Buffer
	buf.WriteByte('x') // ok: bytes.Buffer never fails

	crc := crc32.NewIEEE()
	crc.Write([]byte("abc")) // ok: hash.Hash Write never fails

	//xk:ignore errdrop best-effort cleanup of a temp file on the error path
	os.Remove("gone") // suppressed

	if err := f.Sync(); err != nil { // ok: handled
		_ = err
	}
}
