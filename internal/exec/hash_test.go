package exec_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
)

// EvaluateHash must agree with Evaluate on every plan, including plans
// whose covers overlap (CheckPos) and plans with multiple pieces.
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	for _, preset := range []core.DecompositionPreset{core.PresetXKeyword, core.PresetMinNClustNIndx} {
		s := fig1System(t, core.Options{Z: 8, Decomposition: preset})
		for _, q := range [][]string{{"us", "vcr"}, {"john", "tv"}, {"tv", "vcr"}, {"mike", "dvd"}} {
			plans, err := s.Plans(q)
			if err != nil {
				t.Fatal(err)
			}
			ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
			for _, pp := range plans {
				keys := func(rs []exec.Result) map[string]bool {
					m := make(map[string]bool)
					for _, r := range rs {
						m[r.Key()] = true
					}
					return m
				}
				var nl, hj []exec.Result
				if err := ex.Evaluate(pp.Plan, func(r exec.Result) bool { nl = append(nl, r); return true }); err != nil {
					t.Fatal(err)
				}
				if err := ex.EvaluateHash(pp.Plan, func(r exec.Result) bool { hj = append(hj, r); return true }); err != nil {
					t.Fatal(err)
				}
				a, b := keys(nl), keys(hj)
				if len(a) != len(b) || len(a) != len(nl) || len(b) != len(hj) {
					t.Fatalf("%s/%v: nested-loop %d results, hash %d (plan %s)", preset, q, len(nl), len(hj), pp.Plan.Net)
				}
				for k := range a {
					if !b[k] {
						t.Fatalf("%s/%v: result %s missing from hash join", preset, q, k)
					}
				}
			}
		}
	}
}

func TestHashJoinEarlyStop(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	plans, err := s.Plans([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
	for _, pp := range plans {
		n := 0
		if err := ex.EvaluateHash(pp.Plan, func(exec.Result) bool { n++; return false }); err != nil {
			t.Fatal(err)
		}
		if n > 1 {
			t.Fatalf("early stop emitted %d results", n)
		}
	}
}

func TestAllAndFirst(t *testing.T) {
	s := fig1System(t, core.Options{Z: 8})
	plans, err := s.Plans([]string{"us", "vcr"})
	if err != nil {
		t.Fatal(err)
	}
	ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
	sawResults := false
	for _, pp := range plans {
		all, err := ex.All(pp.Plan)
		if err != nil {
			t.Fatal(err)
		}
		r, found, err := ex.First(pp.Plan, exec.Constraint{})
		if err != nil {
			t.Fatal(err)
		}
		if found != (len(all) > 0) {
			t.Fatalf("First found=%v but All returned %d", found, len(all))
		}
		if found {
			sawResults = true
			if r.Key() != all[0].Key() {
				t.Fatalf("First returned %s, All[0] is %s", r.Key(), all[0].Key())
			}
		}
	}
	if !sawResults {
		t.Fatal("no plan produced results; test is vacuous")
	}
}

func TestStrategySelection(t *testing.T) {
	indexed := fig1System(t, core.Options{Z: 8, Decomposition: core.PresetXKeyword})
	bare := fig1System(t, core.Options{Z: 8, Decomposition: core.PresetMinNClustNIndx})
	for name, s := range map[string]*core.System{"indexed": indexed, "bare": bare} {
		plans, err := s.Plans([]string{"us", "vcr"})
		if err != nil {
			t.Fatal(err)
		}
		ex := &exec.Executor{Store: s.Store, TSS: s.TSS, Index: s.Index}
		for _, pp := range plans {
			n := 0
			if err := ex.Run(pp.Plan, exec.AutoStrategy, func(exec.Result) bool { n++; return true }); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	// Strategy names are stable API for plan explanation output.
	if exec.NestedLoop == exec.HashJoin || exec.HashJoin == exec.AutoStrategy {
		t.Fatal("strategy constants collide")
	}
}
