package webdemo_test

import (
	"net/http"
	"testing"
)

// TestPipelineStatsEndpoint: the per-stage breakdown distinguishes
// cached (result-cache hits) from executed (pipeline runs) queries.
func TestPipelineStatsEndpoint(t *testing.T) {
	srv := demoServer(t)
	var qr struct {
		Results []struct {
			Score int `json:"score"`
		} `json:"results"`
	}
	// First run executes the pipeline, second is a result-cache hit.
	for i := 0; i < 2; i++ {
		if code := getJSON(t, srv.URL+"/api/query?q=john+vcr&k=3", &qr); code != http.StatusOK {
			t.Fatalf("query status %d", code)
		}
	}
	var out struct {
		Cached   int64 `json:"cached"`
		Executed int64 `json:"executed"`
		Pipeline struct {
			Queries int64            `json:"queries"`
			ByMode  map[string]int64 `json:"by_mode"`
			Stages  []struct {
				Stage string `json:"stage"`
				Runs  int64  `json:"runs"`
			} `json:"stages"`
		} `json:"pipeline"`
	}
	if code := getJSON(t, srv.URL+"/debug/pipeline", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Cached != 1 || out.Executed != 1 {
		t.Fatalf("cached=%d executed=%d, want 1/1", out.Cached, out.Executed)
	}
	if out.Pipeline.Queries != 1 {
		t.Fatalf("pipeline ran %d queries, want 1 (cache hit must not run it)", out.Pipeline.Queries)
	}
	if len(out.Pipeline.Stages) != 6 {
		t.Fatalf("got %d stages", len(out.Pipeline.Stages))
	}
	for _, st := range out.Pipeline.Stages {
		if st.Runs != 1 {
			t.Fatalf("stage %s runs = %d, want 1", st.Stage, st.Runs)
		}
	}
}

// TestExplainEndpoint: /api/explain returns the per-stage span tree.
func TestExplainEndpoint(t *testing.T) {
	srv := demoServer(t)
	var out struct {
		Keywords []string `json:"keywords"`
		Mode     string   `json:"mode"`
		Results  int      `json:"results"`
		Stages   []struct {
			Stage      string `json:"stage"`
			DurationNS int64  `json:"duration_ns"`
		} `json:"stages"`
	}
	if code := getJSON(t, srv.URL+"/api/explain?q=john+vcr&k=5", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Mode != "topk" || out.Results == 0 {
		t.Fatalf("mode=%q results=%d", out.Mode, out.Results)
	}
	if len(out.Stages) != 6 || out.Stages[0].Stage != "discover" || out.Stages[5].Stage != "rank" {
		t.Fatalf("stages = %+v", out.Stages)
	}

	var errOut struct {
		Error string `json:"error"`
	}
	if code := getJSON(t, srv.URL+"/api/explain?q=", &errOut); code != http.StatusBadRequest {
		t.Fatalf("empty query status %d", code)
	}
}
