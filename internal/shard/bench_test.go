package shard_test

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/kwindex"
	"repro/internal/shard"
)

// BenchmarkShardSingleNode is the baseline the scatter-gather overhead
// is measured against: the same system answering the same query without
// the wire.
func BenchmarkShardSingleNode(b *testing.B) {
	sys := tpchSystem(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.QueryContext(ctx, []string{"john", "tv"}, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardCoordinator measures the full scatter-gather round trip
// — lookup fan-out, network derivation, execute fan-out, merge — over
// in-process HTTP shards, per shard count.
func BenchmarkShardCoordinator(b *testing.B) {
	sys := tpchSystem(b)
	ctx := context.Background()
	for _, n := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cl := startCluster(b, sys, n, clusterConfig{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.coord.QueryContext(ctx, []string{"john", "tv"}, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardDegraded measures the steady-state degraded path: one
// of three shards is dead and its breaker open, so each query pays one
// fast-fail check plus the surviving fan-out.
func BenchmarkShardDegraded(b *testing.B) {
	sys := tpchSystem(b)
	cl := startCluster(b, sys, 3, clusterConfig{
		opts: shard.CoordinatorOptions{
			Retry:          fault.RetryPolicy{Attempts: 1},
			RequestTimeout: time.Second,
			Logf:           func(string, ...any) {}, // the per-query loss line is the bench's hot path
		},
	})
	cl.servers[1].Close()
	ctx := context.Background()
	// Open the breaker before timing so the loop measures steady state.
	for i := 0; i < 4; i++ {
		if _, err := cl.coord.QueryContext(ctx, []string{"john", "tv"}, 10); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.coord.QueryContext(ctx, []string{"john", "tv"}, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardReplicated measures the replicated-coordinator round
// trip per replica count: the group routing layer (health ordering,
// hedge bookkeeping) is on the per-request path, so its overhead over
// the R=1 case must stay visible in the trajectory.
func BenchmarkShardReplicated(b *testing.B) {
	sys := tpchSystem(b)
	ctx := context.Background()
	for _, r := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			cl := startReplicatedCluster(b, sys, 2, r, replicaConfig{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.coord.QueryContext(ctx, []string{"john", "tv"}, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardHedgedTail measures what hedging buys: one replica per
// group stalls every tenth request by 10ms (the shape of a paged-out
// read or a GC pause), and the hedge=off/hedge=on sub-benches report
// the per-query p99 alongside the mean. The p99 improvement is the
// acceptance figure recorded in BENCH_shard.json.
func BenchmarkShardHedgedTail(b *testing.B) {
	sys := tpchSystem(b)
	ctx := context.Background()
	const stallEvery, stall = 10, 10 * time.Millisecond
	for _, hedge := range []bool{false, true} {
		b.Run(fmt.Sprintf("hedge=%v", hedge), func(b *testing.B) {
			var reqs atomic.Int64
			cl := startReplicatedCluster(b, sys, 2, 2, replicaConfig{
				opts: shard.CoordinatorOptions{
					HedgeDisabled:   !hedge,
					HedgeMinSamples: 1,
					HedgeMaxDelay:   2 * time.Millisecond,
					HedgeBudgetPct:  30, // above the ~10% stall rate
					Retry:           fault.RetryPolicy{Attempts: 1},
				},
				wrap: func(i, ri int, h http.Handler) http.Handler {
					if ri != 0 {
						return h
					}
					return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
						if reqs.Add(1)%stallEvery == 0 {
							time.Sleep(stall)
						}
						h.ServeHTTP(w, r)
					})
				},
			})
			// Warmup primes the preferred replica's latency histograms so
			// the p95-derived hedge delay exists from the first timed query.
			for i := 0; i < 5; i++ {
				if _, err := cl.coord.QueryContext(ctx, []string{"john", "tv"}, 10); err != nil {
					b.Fatal(err)
				}
			}
			lats := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if _, err := cl.coord.QueryContext(ctx, []string{"john", "tv"}, 10); err != nil {
					b.Fatal(err)
				}
				lats = append(lats, time.Since(start))
			}
			b.StopTimer()
			sort.Slice(lats, func(a, c int) bool { return lats[a] < lats[c] })
			if len(lats) > 0 {
				p99 := lats[len(lats)*99/100]
				b.ReportMetric(float64(p99.Microseconds())/1000, "p99-ms")
			}
			if hedge {
				if s := cl.coord.Stats(); s.Hedges > 0 {
					b.ReportMetric(float64(s.HedgeWins)*100/float64(s.Hedges), "hedge-win-%")
				}
			}
		})
	}
}

// BenchmarkShardMergeTopK measures merge throughput: 8 shard streams of
// 4k results each, merged to a top-10 (early termination) and to the
// full set.
func BenchmarkShardMergeTopK(b *testing.B) {
	const nStreams, perStream = 8, 4096
	streams := make([][]exec.Result, nStreams)
	for s := range streams {
		rs := make([]exec.Result, perStream)
		for i := range rs {
			// Ascending per stream, interleaved across streams.
			rs[i] = exec.Result{Score: 1 + i/64, Ord: exec.MakeOrd(i/64, i%64*nStreams+s)}
		}
		streams[s] = rs
	}
	for _, k := range []int{10, 0} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shard.MergeTopK(streams, k)
			}
		})
	}
}

// BenchmarkShardSplit measures the offline partitioner: master index →
// three on-disk shard directories plus manifest.
func BenchmarkShardSplit(b *testing.B) {
	sys := tpchSystem(b)
	ix := kwindex.Build(sys.Obj)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		if _, err := shard.Split(ix, dir, 3, shard.SplitOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
