package segidx_test

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/segidx"
)

// benchDocs derives the ingest workload from the TPC-H Figure 1
// dataset, cycled with shifted TOs so the corpus can be made as large
// as the benchmark needs.
func benchDocs(b *testing.B, n int) []segidx.Document {
	b.Helper()
	ds, err := datagen.TPCHFigure1()
	if err != nil {
		b.Fatal(err)
	}
	base := segidx.DocumentsFromObjectGraph(ds.Obj)
	out := make([]segidx.Document, 0, n)
	for i := 0; len(out) < n; i++ {
		d := base[i%len(base)]
		shift := int64(i/len(base)) * 1_000_000
		nd := segidx.Document{TO: d.TO + shift}
		for _, f := range d.Fields {
			f.Node += xmlNode(shift)
			nd.Fields = append(nd.Fields, f)
		}
		out = append(out, nd)
	}
	return out
}

// benchStore builds a store with several committed segments plus a
// live memtable tail — the steady-state shape of a serving store.
func benchStore(b *testing.B, dir string, docs []segidx.Document, segments int) *segidx.Store {
	b.Helper()
	s, err := segidx.Open(dir, segidx.Options{NoSync: true, CompactAt: -1, FlushBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	per := len(docs) / (segments + 1)
	for g := 0; g < segments; g++ {
		var batch segidx.Batch
		for _, d := range docs[g*per : (g+1)*per] {
			batch.AddDoc(d)
		}
		if err := s.Apply(batch); err != nil {
			b.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	var batch segidx.Batch
	for _, d := range docs[segments*per:] {
		batch.AddDoc(d)
	}
	if err := s.Apply(batch); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSegidxIngest measures the acknowledged write path: WAL
// append + memtable apply per document, with and without the per-batch
// fsync.
func BenchmarkSegidxIngest(b *testing.B) {
	docs := benchDocs(b, 512)
	for _, mode := range []struct {
		name   string
		noSync bool
	}{{"synced", false}, {"nosync", true}} {
		b.Run(mode.name, func(b *testing.B) {
			s, err := segidx.Open(b.TempDir(), segidx.Options{NoSync: mode.noSync, CompactAt: -1, FlushBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := docs[i%len(docs)]
				d.TO = int64(i) // fresh TO per op: pure insert load
				if err := s.Add(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSegidxLookup measures ContainingList over the layered store
// (4 segments + memtable), cold (freshly opened store, empty page
// pools) and warm.
func BenchmarkSegidxLookup(b *testing.B) {
	docs := benchDocs(b, 400)
	dir := b.TempDir()
	s := benchStore(b, dir, docs, 4)
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	keys := []string{"john", "vcr", "dvd", "smith", "order", "2001"}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s, err := segidx.Open(dir, segidx.Options{NoSync: true, CompactAt: -1, FlushBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			s.ContainingList(keys[i%len(keys)])
			b.StopTimer()
			s.Close()
			b.StartTimer()
		}
	})
	b.Run("warm", func(b *testing.B) {
		s, err := segidx.Open(dir, segidx.Options{NoSync: true, CompactAt: -1, FlushBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		for _, k := range keys { // prime the page pools
			s.ContainingList(k)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.ContainingList(keys[i%len(keys)])
		}
	})
}

// BenchmarkSegidxFlush measures sealing + segment write + manifest
// commit for a 128-document memtable.
func BenchmarkSegidxFlush(b *testing.B) {
	docs := benchDocs(b, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := segidx.Open(b.TempDir(), segidx.Options{NoSync: true, CompactAt: -1, FlushBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		var batch segidx.Batch
		for _, d := range docs {
			batch.AddDoc(d)
		}
		if err := s.Apply(batch); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkSegidxCompact measures merging 4 segments (400 documents
// total) into one generation.
func BenchmarkSegidxCompact(b *testing.B) {
	docs := benchDocs(b, 400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		s := benchStore(b, dir, docs, 4)
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := s.Compact(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}
