// Package maporder seeds violations for the maporder analyzer: slices
// populated by ranging over a map and then returned or serialized with
// no intervening sort. The compliant shapes at the bottom mirror
// sortedKeys in internal/edgelist (collect, sort, then use) and
// loop-local accumulators whose order never escapes.
package maporder

import "sort"

func marshalInts([]int) []byte       { return nil }
func consumeSomehow([]string) string { return "" }

// keysUnsorted returns the keys in map iteration order: the caller sees
// a different ordering on every run.
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// valsSerialized hands the map-ordered slice to a serializer; the
// encoded bytes differ across runs.
func valsSerialized(m map[string]int) {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	_ = marshalInts(vals)
}

// keysSent leaks the randomized order through a channel.
func keysSent(m map[string]int, ch chan []string) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	ch <- keys
}

// keysSorted is the sanctioned collect-then-sort shape.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// perEntry accumulates into a loop-local slice: its order is consumed
// within the iteration and never escapes the loop.
func perEntry(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v)
		}
		total += len(local)
	}
	return total
}

// redefCleared overwrites the map-ordered contents before returning;
// the randomized order is gone by the time the slice escapes.
func redefCleared(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	keys = []string{"fixed"}
	return keys
}

// unknownConsumer passes the slice to a helper the analyzer cannot
// classify; it may sort internally, so this stays silent.
func unknownConsumer(m map[string]int) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	s := consumeSomehow(keys)
	return s
}

// setSemantics documents a deliberate unordered escape: the consumer
// treats the slice as a set.
func setSemantics(m map[string]int) []string {
	var keys []string
	//xk:ignore maporder consumer membership-tests the slice as a set; order is irrelevant
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
