// Command xkvet is the repo's static-analysis gate: it loads every
// package in the module, type-checks it (standard library importers
// only — no x/tools), runs the internal/lint analyzers, and prints one
// `file:line: [analyzer] message` per finding. It exits 0 when clean,
// 1 when there are findings, 2 on load/usage errors.
//
// Findings are suppressed only by an explicit annotated comment on the
// offending line or the line above:
//
//	//xk:ignore <analyzer> <reason>
//
// A missing reason or an unknown analyzer name is itself a finding, so
// a typo can never silently disable a check.
//
// Usage:
//
//	xkvet [-dir .] [-analyzers keyjoin,ctxflow,...] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("dir", ".", "any directory inside the module to vet")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := all
	if *names != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, n := range strings.Split(*names, ",") {
			n = strings.TrimSpace(n)
			a, ok := byName[n]
			if !ok {
				fmt.Fprintf(os.Stderr, "xkvet: unknown analyzer %q (use -list)\n", n)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	root, err := lint.ModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xkvet:", err)
		os.Exit(2)
	}
	findings, err := lint.CheckModule(root, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xkvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "xkvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
